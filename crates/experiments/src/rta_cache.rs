//! The admission-cascade regression bench: cached vs. from-scratch RTA,
//! journal vs. clone rollback, warm vs. cold split probes.
//!
//! For every point of a target-utilization sweep this driver generates churn
//! traces and drives **four** controllers over each:
//!
//! * `cached` — the production configuration (incremental RTA cache,
//!   journal-based rollback, cross-probe warm starts),
//! * `scratch` — RTA cache disabled
//!   (`OnlineConfig::builder().rta_cache(false)`),
//! * `clone` — journal disabled (`.journal(false)`): repair/split
//!   rollback snapshots the whole partition per attempt, the PR 3 baseline,
//! * `cold` — cross-probe warm starts disabled
//!   (`.probe_warm_start(false)`).
//!
//! All four must produce byte-identical serialized decision logs (the three
//! optimisations are pure mechanism; only the policy knob
//! `OnlineConfig::repair_ranking` may change decisions, and it is held
//! fixed here). The correctness half of the output (decision counts, the
//! log digest, the `decision_logs_identical` verdict, the cap-exhaustion
//! column) is deterministic and thread-count invariant like every other
//! sweep; the wall-clock timings are measurement data grouped under a
//! single `timing` object so CI can strip them before diffing artifacts.
//! The cached run additionally asserts the repair/split hot path performs
//! **zero** partition snapshot clones (`Partition::clone_count`).

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use spms_analysis::rta;
use spms_core::Partition;
use spms_online::{AdmissionController, ChurnGenerator, Decision, OnlineConfig, WorkloadEvent};

use crate::progress::{NullProgress, ProgressSink};
use crate::runner::SweepRunner;
use crate::same_point;

/// Deterministic per-trace outcome plus the (non-deterministic) timings.
#[derive(Debug, Clone)]
struct TraceOutcome {
    arrivals: u64,
    admitted: u64,
    log_identical: bool,
    log_digest: u64,
    cap_exhaustions: u64,
    journal_clone_free: bool,
    cached: Duration,
    scratch: Duration,
    clone_rollback: Duration,
    cold_probe: Duration,
}

/// Aggregated behaviour at one target-utilization point (deterministic
/// fields only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtaCachePoint {
    /// Target normalized utilization of the churn process.
    pub normalized_utilization: f64,
    /// Arrival events across all traces of this point.
    pub arrivals: u64,
    /// Arrivals admitted (identical across all controller variants).
    pub admitted: u64,
    /// RTA fixed-point cap exhaustions while deciding this point's traces
    /// with the cached controller (deterministic; see
    /// `spms_analysis::rta::cap_exhaustions`).
    pub rta_cap_exhaustions: u64,
}

/// Wall-clock measurements of the sweep: everything non-deterministic in
/// one place, so artifact diffs can strip exactly this object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RtaCacheTiming {
    /// Total nanoseconds deciding every trace with the full cascade
    /// (cache + journal + warm probes).
    pub cached_ns: u64,
    /// Total nanoseconds deciding every trace with from-scratch RTA.
    pub scratch_ns: u64,
    /// Total nanoseconds with clone-based rollback instead of the journal.
    pub clone_rollback_ns: u64,
    /// Total nanoseconds with cold split probes instead of warm starts.
    pub cold_probe_ns: u64,
    /// `scratch_ns / cached_ns` — how many times faster the cached fast
    /// path answered (> 1.0 means the cache wins).
    pub speedup: f64,
    /// `clone_rollback_ns / cached_ns` — what journal rollback buys.
    pub journal_speedup: f64,
    /// `cold_probe_ns / cached_ns` — what cross-probe warm starts buy.
    pub warm_probe_speedup: f64,
}

/// Results of a cascade comparison sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RtaCacheResults {
    points: Vec<RtaCachePoint>,
    /// Whether every trace produced byte-identical serialized decision logs
    /// from all four controller variants (cached / scratch / clone-rollback
    /// / cold-probe).
    pub decision_logs_identical: bool,
    /// Whether the cached (journal-based) controller decided every trace
    /// without a single partition snapshot clone.
    pub journal_clone_free: bool,
    /// Order-sensitive FNV-1a digest over every cached decision log —
    /// deterministic under a fixed seed for any thread count.
    pub decisions_digest: u64,
    /// Wall-clock measurements (non-deterministic; see the type docs).
    pub timing: RtaCacheTiming,
}

impl RtaCacheResults {
    /// All sweep points, in increasing target-utilization order.
    pub fn points(&self) -> &[RtaCachePoint] {
        &self.points
    }

    /// The point matching `normalized_utilization` within the shared sweep
    /// tolerance.
    pub fn point_at(&self, normalized_utilization: f64) -> Option<&RtaCachePoint> {
        self.points
            .iter()
            .find(|p| same_point(p.normalized_utilization, normalized_utilization))
    }

    /// Renders a markdown table plus the equivalence/timing summary.
    pub fn render_markdown(&self) -> String {
        let mut out =
            String::from("| U / m | arrivals | admitted | RTA cap hits |\n|---|---|---|---|\n");
        for p in &self.points {
            out.push_str(&format!(
                "| {:.2} | {} | {} | {} |\n",
                p.normalized_utilization, p.arrivals, p.admitted, p.rta_cap_exhaustions,
            ));
        }
        out.push_str(&format!(
            "\ndecision logs identical: {} (digest {:#018x})\n\
             journal hot path clone-free: {}\n\
             cached {} ns vs scratch {} ns — speedup {:.2}x\n\
             journal vs clone rollback: {} ns vs {} ns — {:.2}x\n\
             warm vs cold split probes: {} ns vs {} ns — {:.2}x\n",
            self.decision_logs_identical,
            self.decisions_digest,
            self.journal_clone_free,
            self.timing.cached_ns,
            self.timing.scratch_ns,
            self.timing.speedup,
            self.timing.cached_ns,
            self.timing.clone_rollback_ns,
            self.timing.journal_speedup,
            self.timing.cached_ns,
            self.timing.cold_probe_ns,
            self.timing.warm_probe_speedup,
        ));
        out
    }

    /// Renders the deterministic per-point data as CSV.
    pub fn render_csv(&self) -> String {
        let mut out =
            String::from("normalized_utilization,arrivals,admitted,rta_cap_exhaustions\n");
        for p in &self.points {
            out.push_str(&format!(
                "{:.4},{},{},{}\n",
                p.normalized_utilization, p.arrivals, p.admitted, p.rta_cap_exhaustions,
            ));
        }
        out
    }
}

/// The cached-vs-scratch comparison driver. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RtaCacheBenchmark {
    cores: usize,
    events_per_trace: usize,
    traces_per_point: usize,
    utilization_points: Vec<f64>,
    max_repair_moves: usize,
    seed: u64,
    threads: usize,
}

impl Default for RtaCacheBenchmark {
    fn default() -> Self {
        RtaCacheBenchmark {
            cores: 4,
            events_per_trace: 120,
            traces_per_point: 10,
            utilization_points: vec![0.6, 0.8],
            max_repair_moves: 2,
            seed: 0,
            threads: 1,
        }
    }
}

impl RtaCacheBenchmark {
    /// A driver with the default grid: 4 cores, 120 events per trace, 10
    /// traces per point, targets 0.6 and 0.8.
    pub fn new() -> Self {
        RtaCacheBenchmark::default()
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets how many events each churn trace contains.
    pub fn events_per_trace(mut self, events: usize) -> Self {
        self.events_per_trace = events;
        self
    }

    /// Sets how many traces are generated per sweep point.
    pub fn traces_per_point(mut self, traces: usize) -> Self {
        self.traces_per_point = traces;
        self
    }

    /// Sets the target normalized-utilization sweep points.
    pub fn utilization_points(mut self, points: Vec<f64>) -> Self {
        self.utilization_points = points;
        self
    }

    /// Sets the repair bound `k` of both controllers.
    pub fn max_repair_moves(mut self, k: usize) -> Self {
        self.max_repair_moves = k;
        self
    }

    /// Sets the RNG seed for trace generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads (`0` = one per available core).
    /// The deterministic half of the results is identical for every thread
    /// count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the comparison sweep.
    pub fn run(&self) -> RtaCacheResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> RtaCacheResults {
        let grid = SweepRunner::new()
            .threads(self.threads)
            .run_grid_with_progress(
                self.seed,
                self.utilization_points.len(),
                self.traces_per_point,
                progress,
                |cell| {
                    let target = self.utilization_points[cell.point_idx];
                    let events = ChurnGenerator::new()
                        .cores(self.cores)
                        .target_normalized_utilization(target)
                        .events(self.events_per_trace)
                        .seed(cell.seed)
                        .generate()
                        .ok()?;
                    let base = || {
                        OnlineConfig::builder()
                            .cores(self.cores)
                            .max_repair_moves(self.max_repair_moves)
                    };
                    let config = base().build();

                    // One untimed warm-up pass absorbs one-time costs
                    // (lazy allocation, code paging) that would otherwise
                    // be charged entirely to the first timed variant.
                    drive(config.clone(), &events)?;

                    // The production cascade, with the snapshot-clone
                    // counter and the cap-exhaustion delta read around it.
                    let clones_before = Partition::clone_count();
                    let exhaustions_before = rta::thread_cap_exhaustions();
                    let (cached, cached_elapsed) = drive(config.clone(), &events)?;
                    let cap_exhaustions = rta::thread_cap_exhaustions() - exhaustions_before;
                    let journal_clone_free = Partition::clone_count() == clones_before;

                    let (scratch, scratch_elapsed) =
                        drive(base().rta_cache(false).build(), &events)?;
                    let (clone_rollback, clone_elapsed) =
                        drive(base().journal(false).build(), &events)?;
                    let (cold_probe, cold_elapsed) =
                        drive(base().probe_warm_start(false).build(), &events)?;

                    let cached_log = serialize_log(cached.decisions());
                    let log_identical = [&scratch, &clone_rollback, &cold_probe]
                        .iter()
                        .all(|c| serialize_log(c.decisions()) == cached_log);
                    Some(TraceOutcome {
                        arrivals: cached.stats().arrivals,
                        admitted: cached.stats().admitted,
                        log_identical,
                        log_digest: fnv1a(cached_log.as_bytes()),
                        cap_exhaustions,
                        journal_clone_free,
                        cached: cached_elapsed,
                        scratch: scratch_elapsed,
                        clone_rollback: clone_elapsed,
                        cold_probe: cold_elapsed,
                    })
                },
            );

        let mut identical = true;
        let mut clone_free = true;
        let mut digest = FNV_OFFSET;
        let mut timing = RtaCacheTiming::default();
        let mut points = Vec::with_capacity(self.utilization_points.len());
        for (&target, traces) in self.utilization_points.iter().zip(&grid) {
            let mut arrivals = 0u64;
            let mut admitted = 0u64;
            let mut cap_exhaustions = 0u64;
            for outcome in traces {
                arrivals += outcome.arrivals;
                admitted += outcome.admitted;
                cap_exhaustions += outcome.cap_exhaustions;
                identical &= outcome.log_identical;
                clone_free &= outcome.journal_clone_free;
                digest = fnv1a_combine(digest, outcome.log_digest);
                timing.cached_ns += outcome.cached.as_nanos() as u64;
                timing.scratch_ns += outcome.scratch.as_nanos() as u64;
                timing.clone_rollback_ns += outcome.clone_rollback.as_nanos() as u64;
                timing.cold_probe_ns += outcome.cold_probe.as_nanos() as u64;
            }
            points.push(RtaCachePoint {
                normalized_utilization: target,
                arrivals,
                admitted,
                rta_cap_exhaustions: cap_exhaustions,
            });
        }
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        timing.speedup = ratio(timing.scratch_ns, timing.cached_ns);
        timing.journal_speedup = ratio(timing.clone_rollback_ns, timing.cached_ns);
        timing.warm_probe_speedup = ratio(timing.cold_probe_ns, timing.cached_ns);
        RtaCacheResults {
            points,
            decision_logs_identical: identical,
            journal_clone_free: clone_free,
            decisions_digest: digest,
            timing,
        }
    }
}

/// Builds a controller for `config`, decides the whole trace and returns it
/// with the wall-clock time the decisions took.
fn drive(
    config: OnlineConfig,
    events: &[WorkloadEvent],
) -> Option<(AdmissionController, Duration)> {
    let mut controller = AdmissionController::new(config).ok()?;
    let started = Instant::now();
    controller.handle_all(events);
    Some((controller, started.elapsed()))
}

/// Canonical serialization of a decision log for byte-comparison.
fn serialize_log(decisions: &[Decision]) -> String {
    serde_json::to_string(&decisions.to_vec()).expect("decision logs always serialize")
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a over a byte string.
fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |acc, b| {
        (acc ^ u64::from(*b)).wrapping_mul(FNV_PRIME)
    })
}

/// Order-sensitive combination of per-trace digests.
fn fnv1a_combine(acc: u64, digest: u64) -> u64 {
    digest
        .to_le_bytes()
        .iter()
        .fold(acc, |acc, b| (acc ^ u64::from(*b)).wrapping_mul(FNV_PRIME))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RtaCacheBenchmark {
        RtaCacheBenchmark::new()
            .cores(2)
            .events_per_trace(30)
            .traces_per_point(3)
            .utilization_points(vec![0.6, 0.8])
            .seed(5)
    }

    #[test]
    fn all_cascade_variants_decide_identically() {
        let results = quick().run();
        assert!(
            results.decision_logs_identical,
            "cached / scratch / clone-rollback / cold-probe logs diverged"
        );
        assert!(
            results.journal_clone_free,
            "the journal-based cascade cloned a partition on the hot path"
        );
        assert_eq!(results.points().len(), 2);
        for p in results.points() {
            assert!(p.arrivals > 0);
            assert!(p.admitted <= p.arrivals);
        }
    }

    #[test]
    fn deterministic_half_is_thread_count_invariant() {
        let serial = quick().run();
        let parallel = quick().threads(4).run();
        assert_eq!(serial.points(), parallel.points());
        assert_eq!(serial.decisions_digest, parallel.decisions_digest);
        assert_eq!(
            serial.decision_logs_identical,
            parallel.decision_logs_identical
        );
    }

    #[test]
    fn digest_is_seed_sensitive() {
        assert_ne!(
            quick().run().decisions_digest,
            quick().seed(99).run().decisions_digest
        );
    }

    #[test]
    fn rendering_mentions_the_verdict() {
        let results = quick().run();
        let md = results.render_markdown();
        assert!(md.contains("decision logs identical: true"));
        assert!(md.contains("journal hot path clone-free: true"));
        assert!(md.contains("journal vs clone rollback"));
        assert!(md.contains("warm vs cold split probes"));
        assert!(md.contains("speedup"));
        let csv = results.render_csv();
        assert!(csv.starts_with("normalized_utilization,arrivals,admitted,rta_cap_exhaustions"));
        assert_eq!(csv.lines().count(), 1 + results.points().len());
    }
}
