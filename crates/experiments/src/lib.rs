//! # spms-experiments
//!
//! Experiment drivers that regenerate the paper's evaluation:
//!
//! * [`AcceptanceRatioExperiment`] — the §4 comparison: acceptance ratio of
//!   FP-TS vs. FFD vs. WFD over randomly generated task sets, with and
//!   without the measured overheads (experiment E5 in DESIGN.md),
//! * [`OverheadSensitivityExperiment`] — how much acceptance ratio is lost as
//!   the overhead magnitude is scaled up (E6),
//! * [`CacheCrossoverExperiment`] — local context switch vs. migration cache
//!   reload cost as a function of working-set size (E4),
//! * [`PreemptionAnatomy`] — the Figure 1 timeline of a single preemption
//!   with every overhead segment annotated (E3),
//! * [`RuntimeCostExperiment`] — simulated preemptions, migrations and
//!   scheduler-overhead fraction of accepted partitions (E8),
//! * [`CoreCountSweepExperiment`] — acceptance ratio as the core count grows
//!   at constant normalized utilization (E9),
//! * [`GlobalComparisonExperiment`] — partitioned / semi-partitioned vs. the
//!   sufficient global scheduling tests (E10),
//! * [`ChurnExperiment`] — online admission control under task churn:
//!   acceptance ratio, decision-path mix and migrations of the
//!   `spms-online` controller over a target-load sweep, with every admitted
//!   epoch optionally replayed through the simulator (E11),
//! * [`RtaCacheBenchmark`] — the incremental-RTA regression guard: drives
//!   cached and from-scratch controllers over identical churn traces,
//!   asserts byte-identical decision logs and reports the wall-clock
//!   speedup (E12, the `BENCH_rta.json` CI artifact),
//! * [`SoakExperiment`] — million-event endurance runs of the sharded
//!   event-loop admission service: decisions/sec throughput, decision
//!   latency percentiles, cross-shard-count event-stream digests and
//!   sampled schedulability replays (E14, the `BENCH_soak.json` CI
//!   artifact),
//! * [`OverheadExperiment`] — what admission capacity costs when splits
//!   and repair relocations are charged at their real CRPD price: the same
//!   churn traces decided under the free, light and heavy
//!   [`CostModelSpec`](spms_overhead::CostModelSpec) scenarios (E15, the
//!   `BENCH_overhead.json` CI artifact).
//!
//! [`ReportSink`] formats any driver's results for the CLI: markdown, CSV
//! or the JSON envelope the CI benchmark artifacts diff.
//!
//! Each experiment produces a plain-old-data result type with
//! `render_markdown()` / `render_csv()` helpers so that examples, benches and
//! the EXPERIMENTS.md write-up all share the same source of truth.
//!
//! All sweeps execute through the shared [`SweepRunner`]: the independent
//! `point × task-set` grid cells fan out across a configurable thread pool
//! (`.threads(n)` on each driver, `0` = one per core) and merge back in a
//! fixed order, so results are bit-identical for every thread count. The
//! `spms` CLI binary in the umbrella crate exposes every driver behind one
//! command-line interface.
//!
//! # Example
//!
//! ```
//! use spms_experiments::{AcceptanceRatioExperiment, AlgorithmKind};
//!
//! let results = AcceptanceRatioExperiment::new()
//!     .cores(4)
//!     .tasks_per_set(8)
//!     .utilization_points(vec![0.6, 0.9])
//!     .sets_per_point(5)
//!     .run();
//! assert_eq!(results.points().len(), 2);
//! let ratio = results.ratio_at(0.6, AlgorithmKind::FpTs).expect("measured");
//! assert!(ratio >= 0.0 && ratio <= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod acceptance;
mod algorithms;
mod cache_crossover;
mod chaos;
mod core_sweep;
mod figure1;
mod global_comparison;
mod online_churn;
mod overhead_sweep;
mod progress;
mod report;
mod rta_cache;
mod runner;
mod runtime_costs;
mod sensitivity;
mod soak;

pub use acceptance::{AcceptancePoint, AcceptanceRatioExperiment, AcceptanceRatioResults};
pub use algorithms::AlgorithmKind;
pub use cache_crossover::{CacheCrossoverExperiment, CacheCrossoverResults, CrossoverPoint};
pub use chaos::{ChaosExperiment, ChaosPoint, ChaosResults};
pub use core_sweep::{CoreCountSweepExperiment, CoreSweepPoint, CoreSweepResults};
pub use figure1::{PreemptionAnatomy, PreemptionAnatomyReport};
pub use global_comparison::{
    ComparisonPoint, ComparisonSeries, GlobalComparisonExperiment, GlobalComparisonResults,
};
pub use online_churn::{ChurnExperiment, ChurnPoint, ChurnResults, ChurnRun};
pub use overhead_sweep::{
    OverheadExperiment, OverheadPoint, OverheadResults, OverheadRun, OverheadScenario,
};
pub use progress::{NullProgress, ProgressSink, StderrProgress};
pub use report::{ReportError, ReportFormat, ReportSink};
pub use rta_cache::{RtaCacheBenchmark, RtaCachePoint, RtaCacheResults, RtaCacheTiming};
pub use runner::{derive_seed, GridCell, SweepRunner};
pub use runtime_costs::{RuntimeCostExperiment, RuntimeCostResults, RuntimeCostSample};
pub use sensitivity::{OverheadSensitivityExperiment, SensitivityPoint, SensitivityResults};
pub use soak::{CrossShardComparison, SoakExperiment, SoakPoint, SoakResults, SoakRun, SoakTiming};

/// Whether a sweep-axis value matches a query within the tolerance used by
/// the `*_at()` result lookups (1e-9 — utilization points and overhead
/// scales are all O(1), so an absolute epsilon is appropriate).
pub(crate) fn same_point(axis_value: f64, query: f64) -> bool {
    (axis_value - query).abs() <= 1e-9
}
