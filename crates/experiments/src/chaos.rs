//! The chaos harness: seeded fault injection against the soak engine.
//!
//! [`ChaosExperiment`] drives the same stack as the soak experiment —
//! [`ChurnGenerator`] → `EventLoop` → `ShardedAdmission` — but loads a
//! deterministic [`FaultPlan`] into every grid cell: shard crashes (with
//! residency drain and cross-shard recovery re-admission), shard stalls,
//! cache corruptions (for the periodic self-audit to catch), and cost
//! spikes. The plan is either scripted ([`script`](ChaosExperiment::script))
//! or generated from a seeded [`FaultSpec`] against the measured horizon of
//! the first churn trace, so the same configuration always injects the
//! same faults at the same scenario times.
//!
//! The serializable [`ChaosResults`] report ends in a **recovery digest**:
//! an order-sensitive FNV-1a over every point's recovery outcome (drains,
//! recoveries, evictions, rejoins, audit verdicts, decision digest). The
//! digest — like every deterministic soak output — is identical for any
//! `--threads` value, which is exactly what the CI chaos smoke job diffs.

use serde::{Deserialize, Serialize};
use spms_faults::{FaultPlan, FaultSpec};
use spms_online::FaultStats;
use spms_task::Time;

use crate::progress::{NullProgress, ProgressSink};
use crate::soak::{fnv1a, SoakExperiment};

/// Recovery outcome of one shard count under the injected fault plan.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Number of admission shards.
    pub shards: usize,
    /// Fault-injection and recovery counters summed over the point's
    /// traces.
    pub fault: FaultStats,
    /// Order-sensitive digest of the point's decision log (the soak
    /// `decisions_digest`, fault events included).
    pub decisions_digest: u64,
    /// Deadline misses across the point's sampled replays (must stay 0:
    /// recovery re-admission must never plant an unschedulable task).
    pub replay_misses: u64,
}

/// Serializable report of one chaos run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosResults {
    /// The fault plan that was injected (scripted or spec-generated),
    /// echoed for exact reproducibility.
    pub plan: FaultPlan,
    /// Scenario horizon (ms) the spec-generated plan was drawn against:
    /// the last timestamp of the first churn trace.
    pub horizon_ms: u64,
    /// Recovery outcome per shard count, configuration order.
    pub points: Vec<ChaosPoint>,
    /// Total deadline misses across every sampled replay (must stay 0).
    pub replay_misses: u64,
    /// Audit violations that went unrepaired across all points (must stay
    /// 0: detection and rebuild are one step).
    pub audit_violations_unrepaired: u64,
    /// Order-sensitive FNV-1a digest over every point's recovery outcome
    /// — stable across `--threads` values.
    pub recovery_digest: u64,
}

impl ChaosResults {
    /// Renders a markdown summary table plus the recovery digest.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| shards | injected | crashes | drained | recovered | evicted | rejoins | audits | violations | repaired | replay misses | decisions digest |\n\
             |---|---|---|---|---|---|---|---|---|---|---|---|\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:#018x} |\n",
                p.shards,
                p.fault.injections,
                p.fault.crashes,
                p.fault.drained,
                p.fault.recoveries,
                p.fault.evictions,
                p.fault.rejoins,
                p.fault.audit_checks,
                p.fault.audit_violations,
                p.fault.audit_repairs,
                p.replay_misses,
                p.decisions_digest,
            ));
        }
        out.push_str(&format!(
            "\nfaults injected over a {} ms horizon\nreplay misses: {}\naudit violations unrepaired: {}\nrecovery digest: {:#018x}\n",
            self.horizon_ms, self.replay_misses, self.audit_violations_unrepaired, self.recovery_digest,
        ));
        out
    }

    /// Renders the per-point table as CSV (digests in hex, run-level
    /// totals repeated on every row so the file stands alone).
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "shards,injections,crashes,stalls,corruptions,cost_spikes,drained,recoveries,\
             evictions,rejoins,audit_checks,audit_violations,audit_repairs,replay_misses,\
             decisions_digest,horizon_ms,recovery_digest\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:#018x},{},{:#018x}\n",
                p.shards,
                p.fault.injections,
                p.fault.crashes,
                p.fault.stalls,
                p.fault.corruptions,
                p.fault.cost_spikes,
                p.fault.drained,
                p.fault.recoveries,
                p.fault.evictions,
                p.fault.rejoins,
                p.fault.audit_checks,
                p.fault.audit_violations,
                p.fault.audit_repairs,
                p.replay_misses,
                p.decisions_digest,
                self.horizon_ms,
                self.recovery_digest,
            ));
        }
        out
    }
}

/// The chaos driver. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosExperiment {
    cores: usize,
    shard_counts: Vec<usize>,
    events_per_trace: usize,
    traces_per_point: usize,
    target_utilization: f64,
    spec: FaultSpec,
    script: Option<FaultPlan>,
    audit_period: Time,
    rebalance_period: Option<Time>,
    replay_sample_every: usize,
    seed: u64,
    threads: usize,
}

impl Default for ChaosExperiment {
    fn default() -> Self {
        ChaosExperiment {
            cores: 8,
            shard_counts: vec![2],
            events_per_trace: 2_000,
            traces_per_point: 1,
            target_utilization: 0.6,
            spec: FaultSpec::default(),
            script: None,
            audit_period: Time::from_millis(100),
            rebalance_period: Some(Time::from_millis(250)),
            replay_sample_every: 50,
            seed: 0,
            threads: 1,
        }
    }
}

impl ChaosExperiment {
    /// The default harness: 8 cores in 2 shards, one 2 000-event trace,
    /// the default fault mix, audits every 100 ms, replay sampling every
    /// 50th admission.
    pub fn new() -> Self {
        ChaosExperiment::default()
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the shard-count axis.
    pub fn shard_counts(mut self, counts: Vec<usize>) -> Self {
        self.shard_counts = counts;
        self
    }

    /// Sets how many events each churn trace contains.
    pub fn events_per_trace(mut self, events: usize) -> Self {
        self.events_per_trace = events;
        self
    }

    /// Sets how many traces are generated per shard count.
    pub fn traces_per_point(mut self, traces: usize) -> Self {
        self.traces_per_point = traces;
        self
    }

    /// Sets the target normalized utilization of the churn process.
    pub fn target_utilization(mut self, target: f64) -> Self {
        self.target_utilization = target;
        self
    }

    /// Sets the seeded fault mix the plan is generated from (ignored when
    /// a [`script`](Self::script) is set).
    pub fn spec(mut self, spec: FaultSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Injects this exact scripted plan instead of generating one from
    /// the [`spec`](Self::spec).
    pub fn script(mut self, plan: Option<FaultPlan>) -> Self {
        self.script = plan;
        self
    }

    /// Sets the self-audit period.
    pub fn audit_period(mut self, period: Time) -> Self {
        self.audit_period = period;
        self
    }

    /// Sets the rebalance tick period (`None` disables rebalancing).
    pub fn rebalance_period(mut self, period: Option<Time>) -> Self {
        self.rebalance_period = period;
        self
    }

    /// Replays every Nth admission through the simulator (0 disables).
    pub fn replay_sample_every(mut self, every: usize) -> Self {
        self.replay_sample_every = every;
        self
    }

    /// Sets the RNG root seed (traces, tie-shuffles, and the fault plan).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads (`0` = one per available core).
    /// The report — recovery digest included — is identical for every
    /// thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the chaos harness.
    pub fn run(&self) -> ChaosResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> ChaosResults {
        let soak = SoakExperiment::new()
            .cores(self.cores)
            .shard_counts(self.shard_counts.clone())
            .events_per_trace(self.events_per_trace)
            .traces_per_point(self.traces_per_point)
            .target_utilization(self.target_utilization)
            .rebalance_period(self.rebalance_period)
            .replay_sample_every(self.replay_sample_every)
            .audit_period(Some(self.audit_period))
            .seed(self.seed)
            .threads(self.threads);
        // The plan is drawn against the measured horizon of the first
        // churn trace (the same seed derivation the soak cells use), so
        // spec-generated faults land inside the busy part of the run.
        let horizon_ms = soak.measured_horizon_ms();
        let plan = self
            .script
            .clone()
            .unwrap_or_else(|| soak.plan_faults(&self.spec));
        let run = soak
            .faults(Some(plan.clone()))
            .run_full_with_progress(progress);

        let mut points = Vec::with_capacity(run.results.points().len());
        let mut replay_misses = 0u64;
        let mut unrepaired = 0u64;
        let mut canonical = String::new();
        for (soak_point, fault) in run.results.points().iter().zip(&run.fault_stats) {
            replay_misses += soak_point.replay_misses;
            unrepaired += fault.audit_violations_unrepaired();
            canonical.push_str(&format!(
                "shards={};drained={};recovered={};evicted={};rejoins={};audits={};violations={};repairs={};decisions={:#018x};",
                soak_point.shards,
                fault.drained,
                fault.recoveries,
                fault.evictions,
                fault.rejoins,
                fault.audit_checks,
                fault.audit_violations,
                fault.audit_repairs,
                soak_point.decisions_digest,
            ));
            points.push(ChaosPoint {
                shards: soak_point.shards,
                fault: *fault,
                decisions_digest: soak_point.decisions_digest,
                replay_misses: soak_point.replay_misses,
            });
        }
        ChaosResults {
            plan,
            horizon_ms,
            points,
            replay_misses,
            audit_violations_unrepaired: unrepaired,
            recovery_digest: fnv1a(canonical.as_bytes()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_faults::{FaultEvent, FaultKind};

    fn quick() -> ChaosExperiment {
        ChaosExperiment::new()
            .cores(4)
            .shard_counts(vec![2])
            .events_per_trace(400)
            .target_utilization(0.6)
            .replay_sample_every(25)
            .seed(7)
    }

    #[test]
    fn chaos_crashes_recover_and_replays_stay_clean() {
        let spec = FaultSpec::parse("crash=1,stall=1,corrupt=1,spike=1,seed=5").unwrap();
        let results = quick().spec(spec).run();
        let p = &results.points[0];
        assert_eq!(p.fault.crashes, 1);
        assert_eq!(p.fault.stalls, 1);
        assert_eq!(p.fault.corruptions, 1);
        assert_eq!(p.fault.cost_spikes, 1);
        assert!(p.fault.drained > 0, "the crash must drain residents");
        assert!(
            p.fault.recoveries > 0,
            "a lightly loaded survivor must re-admit the drain"
        );
        assert_eq!(p.fault.rejoins, 1, "the crashed shard must rejoin");
        assert!(p.fault.audit_checks > 0, "audits must run");
        assert_eq!(results.replay_misses, 0, "recovery must never plant misses");
        assert_eq!(results.audit_violations_unrepaired, 0);
        let md = results.render_markdown();
        assert!(md.contains("recovery digest"));
    }

    #[test]
    fn the_recovery_digest_is_thread_invariant_and_seed_sensitive() {
        let spec = FaultSpec::parse("crash=1,stall=1,corrupt=1,seed=5").unwrap();
        let serial = quick().spec(spec).run();
        let parallel = quick().spec(spec).threads(4).run();
        assert_eq!(serial, parallel, "the whole report is thread-invariant");
        let other = quick().spec(spec).seed(8).run();
        assert_ne!(serial.recovery_digest, other.recovery_digest);
    }

    /// The fault-free soak artifact must not grow a fault section:
    /// [`FaultStats`] lives beside the serialized results, never inside
    /// them, so a soak without `--faults` stays byte-compatible with
    /// pre-chaos reports.
    #[test]
    fn fault_free_soak_artifacts_stay_fault_silent() {
        let run = SoakExperiment::new()
            .cores(4)
            .shard_counts(vec![1, 2])
            .events_per_trace(300)
            .seed(7)
            .run_full_with_progress(&crate::progress::NullProgress);
        assert!(run.fault_stats.iter().all(|f| *f == FaultStats::default()));
        let json = serde_json::to_string(&run.results).expect("soak results serialize");
        assert!(
            !json.contains("fault"),
            "fault-free soak artifact grew a fault section"
        );
    }

    #[test]
    fn scripted_plans_override_the_spec() {
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at_ms: 500,
            kind: FaultKind::ShardCrash {
                shard: 0,
                down_ms: 200,
            },
        });
        let results = quick().script(Some(plan.clone())).run();
        assert_eq!(results.plan, plan);
        let p = &results.points[0];
        assert_eq!(p.fault.injections, 1);
        assert_eq!(p.fault.crashes, 1);
        assert_eq!(p.fault.stalls, 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig {
            cases: 4, ..proptest::prelude::ProptestConfig::default()
        })]

        /// Any seeded fault mix yields a report — recovery digest
        /// included — that is byte-identical for every worker-thread
        /// count. The deterministically seeded proptest runner keeps
        /// these four cases reproducible run to run.
        #[test]
        fn any_fault_mix_is_thread_invariant(
            crashes in 0u32..3,
            stalls in 0u32..3,
            corruptions in 0u32..3,
            cost_spikes in 0u32..2,
            fault_seed in proptest::prelude::any::<u64>(),
            workload_seed in 0u64..1_000,
        ) {
            let spec = FaultSpec {
                crashes,
                stalls,
                corruptions,
                cost_spikes,
                seed: fault_seed,
            };
            let base = quick().seed(workload_seed).spec(spec);
            let serial = base.clone().run();
            let parallel = base.threads(4).run();
            proptest::prop_assert_eq!(serial, parallel);
        }
    }
}
