//! The partitioning algorithms compared by the experiments.

use serde::{Deserialize, Serialize};
use spms_analysis::{OverheadModel, UniprocessorTest};
use spms_core::{
    PartitionedEdf, PartitionedFixedPriority, Partitioner, SemiPartitionedDmPm, SemiPartitionedFpTs,
};

/// Which algorithm a data series belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Semi-partitioned FP-TS (SPA2 with heavy-task pre-assignment).
    FpTs,
    /// Semi-partitioned FP-TS restricted to the SPA1 pass.
    FpTsSpa1,
    /// Semi-partitioned FP-TS with Guan's next-fit splitting pass (splits on
    /// every processor boundary — the most migration-heavy configuration).
    FpTsNextFit,
    /// Semi-partitioned DM-PM (Kato & Yamasaki, RTAS 2009).
    DmPm,
    /// First-fit decreasing partitioning (paper baseline).
    Ffd,
    /// Worst-fit decreasing partitioning (paper baseline).
    Wfd,
    /// Best-fit decreasing partitioning (extra baseline).
    Bfd,
    /// Partitioned EDF with first-fit decreasing (dynamic-priority baseline;
    /// the paper's related-work line of Kato & Yamasaki).
    EdfFfd,
}

impl AlgorithmKind {
    /// The three algorithms the paper's §4 evaluation compares.
    pub fn paper_lineup() -> Vec<AlgorithmKind> {
        vec![AlgorithmKind::FpTs, AlgorithmKind::Ffd, AlgorithmKind::Wfd]
    }

    /// The extended line-up: the paper's three algorithms plus the other
    /// semi-partitioned schemes and baselines implemented in this workspace.
    pub fn extended_lineup() -> Vec<AlgorithmKind> {
        vec![
            AlgorithmKind::FpTs,
            AlgorithmKind::FpTsNextFit,
            AlgorithmKind::DmPm,
            AlgorithmKind::Ffd,
            AlgorithmKind::Wfd,
            AlgorithmKind::Bfd,
            AlgorithmKind::EdfFfd,
        ]
    }

    /// Whether the algorithm may split tasks across cores.
    pub fn is_semi_partitioned(&self) -> bool {
        matches!(
            self,
            AlgorithmKind::FpTs
                | AlgorithmKind::FpTsSpa1
                | AlgorithmKind::FpTsNextFit
                | AlgorithmKind::DmPm
        )
    }

    /// Display name used in tables and CSV headers.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::FpTs => "FP-TS",
            AlgorithmKind::FpTsSpa1 => "FP-TS(SPA1)",
            AlgorithmKind::FpTsNextFit => "FP-TS/NF",
            AlgorithmKind::DmPm => "DM-PM",
            AlgorithmKind::Ffd => "FFD",
            AlgorithmKind::Wfd => "WFD",
            AlgorithmKind::Bfd => "BFD",
            AlgorithmKind::EdfFfd => "EDF-FFD",
        }
    }

    /// Instantiates the algorithm with the given acceptance test and
    /// overhead model.
    pub fn build(
        &self,
        test: UniprocessorTest,
        overhead: OverheadModel,
    ) -> Box<dyn Partitioner + Send + Sync> {
        match self {
            AlgorithmKind::FpTs => Box::new(
                SemiPartitionedFpTs::spa2()
                    .with_test(test)
                    .with_overhead(overhead),
            ),
            AlgorithmKind::FpTsSpa1 => Box::new(
                SemiPartitionedFpTs::spa1()
                    .with_test(test)
                    .with_overhead(overhead),
            ),
            AlgorithmKind::FpTsNextFit => Box::new(
                SemiPartitionedFpTs::next_fit_splitting()
                    .with_test(test)
                    .with_overhead(overhead),
            ),
            AlgorithmKind::DmPm => Box::new(
                SemiPartitionedDmPm::new()
                    .with_test(test)
                    .with_overhead(overhead),
            ),
            AlgorithmKind::Ffd => Box::new(
                PartitionedFixedPriority::ffd()
                    .with_test(test)
                    .with_overhead(overhead),
            ),
            AlgorithmKind::Wfd => Box::new(
                PartitionedFixedPriority::wfd()
                    .with_test(test)
                    .with_overhead(overhead),
            ),
            AlgorithmKind::Bfd => Box::new(
                PartitionedFixedPriority::bfd()
                    .with_test(test)
                    .with_overhead(overhead),
            ),
            // EDF decides by processor demand, not by fixed priorities, so
            // the per-core test parameter does not apply.
            AlgorithmKind::EdfFfd => Box::new(PartitionedEdf::ffd().with_overhead(overhead)),
        }
    }
}

impl std::fmt::Display for AlgorithmKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::TaskSetGenerator;

    #[test]
    fn lineup_matches_the_paper() {
        let names: Vec<&str> = AlgorithmKind::paper_lineup()
            .iter()
            .map(|a| a.name())
            .collect();
        assert_eq!(names, vec!["FP-TS", "FFD", "WFD"]);
    }

    #[test]
    fn every_kind_builds_a_working_partitioner() {
        let tasks = TaskSetGenerator::new()
            .task_count(8)
            .total_utilization(2.0)
            .seed(1)
            .generate()
            .unwrap();
        for kind in [
            AlgorithmKind::FpTs,
            AlgorithmKind::FpTsSpa1,
            AlgorithmKind::Ffd,
            AlgorithmKind::Wfd,
            AlgorithmKind::Bfd,
            AlgorithmKind::EdfFfd,
        ] {
            let algo = kind.build(UniprocessorTest::ResponseTime, OverheadModel::zero());
            let outcome = algo.partition(&tasks, 4).unwrap();
            assert!(outcome.is_schedulable(), "{kind} rejected a light set");
            assert!(!algo.name().is_empty());
        }
    }
}
