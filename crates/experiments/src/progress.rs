//! Progress reporting for long sweeps.
//!
//! A [`SweepRunner`](crate::SweepRunner) evaluates a grid of independent
//! cells; a [`ProgressSink`] observes cell completions so that interactive
//! frontends (the `spms` CLI, examples) can show how far a sweep has
//! advanced without the runner knowing anything about terminals.
//!
//! Sinks must be `Sync`: with more than one worker thread, completions are
//! reported concurrently. The completion counter itself is owned by the
//! runner, so a sink only ever formats and forwards numbers.

use std::sync::Mutex;

/// Observer of sweep-grid progress.
pub trait ProgressSink: Sync {
    /// Called after each grid cell finishes. `completed` counts finished
    /// cells (1-based, monotonic per sweep but reported concurrently across
    /// workers), `total` is the grid size.
    fn cell_done(&self, completed: usize, total: usize);
}

/// A sink that ignores all progress — the default for library callers.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgress;

impl ProgressSink for NullProgress {
    fn cell_done(&self, _completed: usize, _total: usize) {}
}

/// A sink that rewrites a single stderr status line, throttled to roughly
/// 5 % increments so parallel sweeps don't serialize on terminal writes.
#[derive(Debug, Default)]
pub struct StderrProgress {
    label: String,
    last_shown: Mutex<usize>,
}

impl StderrProgress {
    /// Creates a sink that prefixes every status line with `label`.
    pub fn new(label: impl Into<String>) -> Self {
        StderrProgress {
            label: label.into(),
            last_shown: Mutex::new(0),
        }
    }
}

impl ProgressSink for StderrProgress {
    fn cell_done(&self, completed: usize, total: usize) {
        let stride = (total / 20).max(1);
        if !completed.is_multiple_of(stride) && completed != total {
            return;
        }
        let mut last = match self.last_shown.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        // Workers race to report; only ever move the displayed count forward.
        if completed < *last {
            return;
        }
        *last = completed;
        eprint!("\r{}: {completed}/{total} cells", self.label);
        if completed == total {
            eprintln!();
        }
    }
}

/// Adapter that re-bases one grid's progress inside a larger multi-grid
/// sweep: reports `completed_before + completed` out of `grand_total`.
///
/// Drivers that run several `SweepRunner` grids in sequence (the
/// sensitivity experiment runs one grid per overhead scale) wrap the
/// caller's sink in one of these per grid, so the displayed count keeps
/// rising monotonically across the whole run instead of restarting — or,
/// with [`StderrProgress`]'s forward-only guard, freezing — at every grid
/// boundary.
pub(crate) struct ShiftedProgress<'a> {
    inner: &'a dyn ProgressSink,
    completed_before: usize,
    grand_total: usize,
}

impl<'a> ShiftedProgress<'a> {
    pub(crate) fn new(
        inner: &'a dyn ProgressSink,
        completed_before: usize,
        grand_total: usize,
    ) -> Self {
        ShiftedProgress {
            inner,
            completed_before,
            grand_total,
        }
    }
}

impl ProgressSink for ShiftedProgress<'_> {
    fn cell_done(&self, completed: usize, _total: usize) {
        self.inner
            .cell_done(self.completed_before + completed, self.grand_total);
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::ProgressSink;
    use std::sync::Mutex;

    /// Records every reported `(completed, total)` pair, for tests.
    #[derive(Debug, Default)]
    pub struct RecordingProgress {
        pub calls: Mutex<Vec<(usize, usize)>>,
    }

    impl ProgressSink for RecordingProgress {
        fn cell_done(&self, completed: usize, total: usize) {
            self.calls
                .lock()
                .expect("progress mutex")
                .push((completed, total));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::RecordingProgress;
    use super::*;

    #[test]
    fn null_progress_is_a_no_op() {
        NullProgress.cell_done(1, 10);
    }

    #[test]
    fn recording_progress_captures_calls() {
        let sink = RecordingProgress::default();
        sink.cell_done(1, 2);
        sink.cell_done(2, 2);
        assert_eq!(*sink.calls.lock().unwrap(), vec![(1, 2), (2, 2)]);
    }

    #[test]
    fn stderr_progress_never_moves_backwards() {
        let sink = StderrProgress::new("test");
        sink.cell_done(20, 20);
        sink.cell_done(1, 20);
        assert_eq!(*sink.last_shown.lock().unwrap(), 20);
    }

    #[test]
    fn shifted_progress_rebases_into_the_grand_total() {
        // A second grid wrapped at offset 5 of 10 keeps the overall count
        // rising, so StderrProgress's forward-only guard never freezes at a
        // grid boundary.
        let sink = RecordingProgress::default();
        ShiftedProgress::new(&sink, 0, 10).cell_done(5, 5);
        ShiftedProgress::new(&sink, 5, 10).cell_done(1, 5);
        ShiftedProgress::new(&sink, 5, 10).cell_done(5, 5);
        assert_eq!(
            *sink.calls.lock().unwrap(),
            vec![(5, 10), (6, 10), (10, 10)]
        );
    }
}
