//! Acceptance ratio as a function of the number of processors (experiment
//! E9).
//!
//! The paper evaluates a 4-core Intel Core-i7; this sweep extends the same
//! acceptance-ratio comparison to other core counts (the bin-packing waste of
//! partitioned scheduling grows with the number of bins, so the gap to
//! semi-partitioned scheduling widens as cores are added while the normalized
//! utilization is held constant).

use serde::{Deserialize, Serialize};
use spms_analysis::{OverheadModel, UniprocessorTest};
use spms_task::{PeriodDistribution, TaskSetGenerator, Time, UtilizationDistribution};

use crate::progress::{NullProgress, ProgressSink};
use crate::runner::SweepRunner;
use crate::AlgorithmKind;

/// One row of the core-count sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSweepPoint {
    /// Number of processors.
    pub cores: usize,
    /// `(algorithm, accepted fraction)` pairs in lineup order.
    pub ratios: Vec<(AlgorithmKind, f64)>,
}

impl CoreSweepPoint {
    /// The acceptance ratio of one algorithm at this core count.
    pub fn ratio(&self, algorithm: AlgorithmKind) -> Option<f64> {
        self.ratios
            .iter()
            .find(|(a, _)| *a == algorithm)
            .map(|(_, r)| *r)
    }
}

/// Results of a core-count sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CoreSweepResults {
    points: Vec<CoreSweepPoint>,
    algorithms: Vec<AlgorithmKind>,
}

impl CoreSweepResults {
    /// All sweep points in increasing core-count order.
    pub fn points(&self) -> &[CoreSweepPoint] {
        &self.points
    }

    /// The algorithms that were compared.
    pub fn algorithms(&self) -> &[AlgorithmKind] {
        &self.algorithms
    }

    /// The acceptance ratio of `algorithm` at exactly `cores` processors.
    pub fn ratio_at(&self, cores: usize, algorithm: AlgorithmKind) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.cores == cores)
            .and_then(|p| p.ratio(algorithm))
    }

    /// Renders a markdown table: one row per core count.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("| m |");
        for a in &self.algorithms {
            out.push_str(&format!(" {a} |"));
        }
        out.push_str("\n|---|");
        for _ in &self.algorithms {
            out.push_str("---|");
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("| {} |", p.cores));
            for a in &self.algorithms {
                match p.ratio(*a) {
                    Some(r) => out.push_str(&format!(" {r:.2} |")),
                    None => out.push_str(" - |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a CSV with a header row.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("cores");
        for a in &self.algorithms {
            out.push(',');
            out.push_str(a.name());
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{}", p.cores));
            for a in &self.algorithms {
                out.push_str(&format!(",{:.4}", p.ratio(*a).unwrap_or(f64::NAN)));
            }
            out.push('\n');
        }
        out
    }
}

/// Driver for the core-count sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreCountSweepExperiment {
    core_counts: Vec<usize>,
    tasks_per_core: usize,
    normalized_utilization: f64,
    sets_per_point: usize,
    algorithms: Vec<AlgorithmKind>,
    test: UniprocessorTest,
    overhead: OverheadModel,
    seed: u64,
    threads: usize,
}

impl Default for CoreCountSweepExperiment {
    fn default() -> Self {
        CoreCountSweepExperiment {
            core_counts: vec![2, 4, 8, 16],
            tasks_per_core: 4,
            normalized_utilization: 0.85,
            sets_per_point: 100,
            algorithms: AlgorithmKind::paper_lineup(),
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::zero(),
            seed: 0,
            threads: 1,
        }
    }
}

impl CoreCountSweepExperiment {
    /// A driver with the defaults: m ∈ {2, 4, 8, 16}, 4 tasks per core, 85 %
    /// normalized utilization, 100 sets per point, FP-TS vs FFD vs WFD.
    pub fn new() -> Self {
        CoreCountSweepExperiment::default()
    }

    /// Sets the core counts to sweep.
    pub fn core_counts(mut self, core_counts: Vec<usize>) -> Self {
        self.core_counts = core_counts;
        self
    }

    /// Sets the number of tasks generated per core.
    pub fn tasks_per_core(mut self, n: usize) -> Self {
        self.tasks_per_core = n;
        self
    }

    /// Sets the normalized utilization (total utilization / core count) used
    /// at every point.
    pub fn normalized_utilization(mut self, u: f64) -> Self {
        self.normalized_utilization = u;
        self
    }

    /// Sets how many task sets are generated per core count.
    pub fn sets_per_point(mut self, sets: usize) -> Self {
        self.sets_per_point = sets;
        self
    }

    /// Sets the algorithms to compare.
    pub fn algorithms(mut self, algorithms: Vec<AlgorithmKind>) -> Self {
        self.algorithms = algorithms;
        self
    }

    /// Sets the per-core acceptance test.
    pub fn test(mut self, test: UniprocessorTest) -> Self {
        self.test = test;
        self
    }

    /// Sets the overhead model folded into every algorithm's analysis.
    pub fn overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the sweep.
    pub fn run(&self) -> CoreSweepResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> CoreSweepResults {
        let partitioners: Vec<(AlgorithmKind, Box<dyn spms_core::Partitioner + Send + Sync>)> =
            self.algorithms
                .iter()
                .map(|a| (*a, a.build(self.test, self.overhead)))
                .collect();
        let grid = SweepRunner::new()
            .threads(self.threads)
            .run_grid_with_progress(
                self.seed,
                self.core_counts.len(),
                self.sets_per_point,
                progress,
                |cell| {
                    let cores = self.core_counts[cell.point_idx];
                    let generator = TaskSetGenerator::new()
                        .task_count(self.tasks_per_core * cores)
                        .total_utilization(self.normalized_utilization * cores as f64)
                        .utilization_distribution(UtilizationDistribution::UUniFastDiscard {
                            max_task_utilization: 1.0,
                        })
                        .period_distribution(PeriodDistribution::LogUniform {
                            min: Time::from_millis(10),
                            max: Time::from_secs(1),
                        })
                        .seed(cell.seed);
                    let tasks = generator.generate().ok()?;
                    Some(
                        partitioners
                            .iter()
                            .map(|(_, partitioner)| {
                                partitioner
                                    .partition(&tasks, cores)
                                    .expect("valid generated task set")
                                    .is_schedulable()
                            })
                            .collect::<Vec<bool>>(),
                    )
                },
            );
        let kinds: Vec<AlgorithmKind> = partitioners.iter().map(|(kind, _)| *kind).collect();
        let points = self
            .core_counts
            .iter()
            .zip(grid)
            .map(|(&cores, verdicts)| CoreSweepPoint {
                cores,
                ratios: crate::runner::acceptance_ratios(&kinds, &verdicts),
            })
            .collect();
        CoreSweepResults {
            points,
            algorithms: self.algorithms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CoreCountSweepExperiment {
        CoreCountSweepExperiment::new()
            .core_counts(vec![2, 4])
            .sets_per_point(10)
            .normalized_utilization(0.85)
            .seed(3)
    }

    #[test]
    fn sweep_covers_every_core_count() {
        let results = quick().run();
        assert_eq!(results.points().len(), 2);
        assert_eq!(results.points()[0].cores, 2);
        assert_eq!(results.points()[1].cores, 4);
        for p in results.points() {
            for (_, r) in &p.ratios {
                assert!((0.0..=1.0).contains(r));
            }
        }
    }

    #[test]
    fn fpts_dominates_the_baselines_at_every_core_count() {
        let results = quick().run();
        for p in results.points() {
            let fpts = p.ratio(AlgorithmKind::FpTs).unwrap();
            let ffd = p.ratio(AlgorithmKind::Ffd).unwrap();
            let wfd = p.ratio(AlgorithmKind::Wfd).unwrap();
            assert!(fpts >= ffd, "m={}: {fpts} vs {ffd}", p.cores);
            assert!(fpts >= wfd, "m={}: {fpts} vs {wfd}", p.cores);
        }
    }

    #[test]
    fn rendering_contains_headers_and_rows() {
        let results = quick().run();
        let md = results.render_markdown();
        let csv = results.render_csv();
        assert!(md.contains("| m |"));
        assert!(md.contains("FP-TS"));
        assert_eq!(csv.lines().count(), 1 + results.points().len());
    }

    #[test]
    fn runs_are_reproducible() {
        assert_eq!(quick().run(), quick().run());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        assert_eq!(quick().run(), quick().threads(3).run());
    }

    #[test]
    fn ratio_at_looks_up_exact_core_counts() {
        let results = quick().run();
        assert!(results.ratio_at(2, AlgorithmKind::FpTs).is_some());
        assert!(results.ratio_at(64, AlgorithmKind::FpTs).is_none());
    }
}
