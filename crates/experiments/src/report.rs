//! One report writer for every experiment driver.
//!
//! Each driver produces a plain-old-data result type with
//! `render_markdown()` / `render_csv()` helpers; what used to vary per CLI
//! subcommand was only the dispatch on `--format` and the JSON envelope the
//! CI benchmark artifacts expect. [`ReportSink`] centralizes both so the
//! `spms` binary (and any other front end) formats every experiment the
//! same way — and so the envelope's byte layout is pinned in exactly one
//! place.

use std::fmt;

use serde::Serialize;

/// The output formats every experiment front end understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportFormat {
    /// A human-readable markdown table.
    Markdown,
    /// A CSV with a header row, suitable for plotting.
    Csv,
    /// The serialized results wrapped in the CI artifact envelope.
    Json,
}

impl ReportFormat {
    /// Parses a `--format` flag value; `None` for anything unknown.
    pub fn parse(raw: &str) -> Option<ReportFormat> {
        match raw {
            "markdown" => Some(ReportFormat::Markdown),
            "csv" => Some(ReportFormat::Csv),
            "json" => Some(ReportFormat::Json),
            _ => None,
        }
    }
}

/// A report failed to produce output (serialization only — the markdown
/// and CSV renderers are infallible).
#[derive(Debug)]
pub struct ReportError(String);

impl fmt::Display for ReportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serializing results failed: {}", self.0)
    }
}

impl std::error::Error for ReportError {}

/// Formats one experiment's results in the requested [`ReportFormat`].
///
/// The JSON output is the envelope the CI benchmark artifacts diff:
/// `{"experiment":"<name>","seed":N,"threads":N,"results":<payload>}` —
/// which experiment ran and under which reproducibility knobs, with the
/// driver's serialized results embedded verbatim.
#[derive(Debug, Clone)]
pub struct ReportSink {
    experiment: String,
    format: ReportFormat,
    seed: u64,
    threads: usize,
}

impl ReportSink {
    /// A sink for `experiment` writing in `format`, with seed 0 and one
    /// thread recorded in the envelope until overridden.
    pub fn new(experiment: impl Into<String>, format: ReportFormat) -> Self {
        ReportSink {
            experiment: experiment.into(),
            format,
            seed: 0,
            threads: 1,
        }
    }

    /// Records the root RNG seed in the JSON envelope.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Records the worker-thread count in the JSON envelope.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Renders `results` in the sink's format: the matching closure for
    /// markdown/CSV, or the serialized results inside the CI envelope for
    /// JSON.
    pub fn render<T: Serialize>(
        &self,
        results: &T,
        markdown: impl FnOnce() -> String,
        csv: impl FnOnce() -> String,
    ) -> Result<String, ReportError> {
        Ok(match self.format {
            ReportFormat::Markdown => markdown(),
            ReportFormat::Csv => csv(),
            ReportFormat::Json => {
                let payload =
                    serde_json::to_string(results).map_err(|e| ReportError(e.to_string()))?;
                format!(
                    "{{\"experiment\":\"{}\",\"seed\":{},\"threads\":{},\"results\":{payload}}}",
                    self.experiment, self.seed, self.threads
                )
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parsing_covers_the_flag_values() {
        assert_eq!(
            ReportFormat::parse("markdown"),
            Some(ReportFormat::Markdown)
        );
        assert_eq!(ReportFormat::parse("csv"), Some(ReportFormat::Csv));
        assert_eq!(ReportFormat::parse("json"), Some(ReportFormat::Json));
        assert_eq!(ReportFormat::parse("yaml"), None);
    }

    #[test]
    fn markdown_and_csv_dispatch_to_the_renderers() {
        let sink = ReportSink::new("demo", ReportFormat::Markdown);
        let out = sink.render(&7u32, || "md".into(), || "csv".into()).unwrap();
        assert_eq!(out, "md");
        let sink = ReportSink::new("demo", ReportFormat::Csv);
        let out = sink.render(&7u32, || "md".into(), || "csv".into()).unwrap();
        assert_eq!(out, "csv");
    }

    #[test]
    fn the_json_envelope_bytes_are_pinned() {
        // CI diffs these artifacts byte-for-byte; the envelope layout must
        // not drift.
        let sink = ReportSink::new("demo", ReportFormat::Json)
            .seed(42)
            .threads(2);
        let out = sink
            .render(&vec![1u32, 2], || unreachable!(), || unreachable!())
            .unwrap();
        assert_eq!(
            out,
            "{\"experiment\":\"demo\",\"seed\":42,\"threads\":2,\"results\":[1,2]}"
        );
    }
}
