//! The overhead-cost experiment: what admission capacity costs when
//! migrations are charged at their real CRPD price.
//!
//! For every `(cost model, target utilization)` pair this driver generates
//! churn traces and drives the online [`AdmissionController`] with the
//! scenario's [`CostModelSpec`]: every split piece and repair relocation
//! inflates the affected task's analysis WCET by the model's per-job
//! migration charge before the schedulability test must still pass. The
//! trace seeds depend only on the utilization point — **every scenario
//! decides the same traces**, so the acceptance columns are directly
//! comparable and the working-set crossover (a heavy model losing
//! admissions a light one keeps as load grows) is visible in one table.
//!
//! The sweep runs on the shared [`SweepRunner`] grid, so results are
//! bit-identical for every `--threads` value under a fixed seed; this is
//! the `BENCH_overhead.json` CI artifact.

use serde::{Deserialize, Serialize};
use spms_online::{
    run_trace, AdmissionController, ChurnGenerator, OnlineConfig, ReplayConfig, ReplayOutcome,
};
use spms_overhead::{CostModelSpec, CrpdCostModel};
use spms_task::Time;
use spms_telemetry::Registry;

use crate::progress::{NullProgress, ProgressSink};
use crate::runner::{derive_seed, SweepRunner};
use crate::same_point;

/// One cost-model scenario of the sweep: a label for the report plus the
/// model the controller charges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadScenario {
    /// Scenario name in the rendered tables (e.g. `zero`, `crpd-heavy`).
    pub label: String,
    /// The migration cost model charged under this scenario.
    pub model: CostModelSpec,
}

impl OverheadScenario {
    /// A named scenario.
    pub fn new(label: impl Into<String>, model: CostModelSpec) -> Self {
        OverheadScenario {
            label: label.into(),
            model,
        }
    }
}

/// Aggregated controller behaviour at one `(scenario, utilization)` point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadPoint {
    /// The cost-model scenario this row was decided under.
    pub scenario: String,
    /// Target normalized utilization of the churn process.
    pub normalized_utilization: f64,
    /// Arrival events across all traces of this point.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Fraction of arrivals admitted.
    pub acceptance_ratio: f64,
    /// Fraction of admissions that split the arrival across cores.
    pub split_ratio: f64,
    /// Microseconds of migration-cost WCET inflation charged per
    /// admission, on average.
    pub inflation_us_per_admission: f64,
    /// Epochs replayed through the simulator (0 when replay is disabled).
    pub replayed_epochs: u64,
    /// Deadline misses across all replayed epochs (must stay 0).
    pub replay_misses: u64,
}

/// Everything an overhead sweep produces: the serializable
/// [`OverheadResults`] artifact plus the run-wide telemetry registry
/// (per-cell controller registries merged in grid order, so the
/// deterministic section is identical for every `--threads` value).
#[derive(Debug, Clone)]
pub struct OverheadRun {
    /// The serializable sweep artifact.
    pub results: OverheadResults,
    /// Every grid cell's controller registry, merged in grid order.
    pub metrics: Registry,
}

/// Results of an overhead-cost sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct OverheadResults {
    points: Vec<OverheadPoint>,
}

impl OverheadResults {
    /// All points, grouped by scenario in configuration order, each in
    /// increasing target-utilization order.
    pub fn points(&self) -> &[OverheadPoint] {
        &self.points
    }

    /// The point of `scenario` at `normalized_utilization` within the
    /// shared sweep tolerance.
    pub fn point_at(&self, scenario: &str, normalized_utilization: f64) -> Option<&OverheadPoint> {
        self.points.iter().find(|p| {
            p.scenario == scenario && same_point(p.normalized_utilization, normalized_utilization)
        })
    }

    /// Total deadline misses across every replayed epoch of the sweep.
    pub fn total_replay_misses(&self) -> u64 {
        self.points.iter().map(|p| p.replay_misses).sum()
    }

    /// Renders a markdown table, one row per `(scenario, utilization)`.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from(
            "| model | U / m | accepted | splits | inflate µs/admit | replay misses |\n\
             |---|---|---|---|---|---|\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "| {} | {:.2} | {:.2} | {:.2} | {:.1} | {} |\n",
                p.scenario,
                p.normalized_utilization,
                p.acceptance_ratio,
                p.split_ratio,
                p.inflation_us_per_admission,
                p.replay_misses,
            ));
        }
        out
    }

    /// Renders a CSV with a header row, suitable for plotting.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "scenario,normalized_utilization,arrivals,admitted,acceptance_ratio,split_ratio,\
             inflation_us_per_admission,replayed_epochs,replay_misses\n",
        );
        for p in &self.points {
            out.push_str(&format!(
                "{},{:.4},{},{},{:.4},{:.4},{:.4},{},{}\n",
                p.scenario,
                p.normalized_utilization,
                p.arrivals,
                p.admitted,
                p.acceptance_ratio,
                p.split_ratio,
                p.inflation_us_per_admission,
                p.replayed_epochs,
                p.replay_misses,
            ));
        }
        out
    }
}

/// The overhead-cost experiment driver. See the [module docs](self).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadExperiment {
    cores: usize,
    events_per_trace: usize,
    traces_per_point: usize,
    utilization_points: Vec<f64>,
    max_repair_moves: usize,
    scenarios: Vec<OverheadScenario>,
    replay_duration: Option<Time>,
    seed: u64,
    threads: usize,
}

impl Default for OverheadExperiment {
    fn default() -> Self {
        OverheadExperiment {
            cores: 4,
            events_per_trace: 120,
            traces_per_point: 12,
            utilization_points: vec![0.6, 0.75, 0.9],
            max_repair_moves: 2,
            scenarios: OverheadExperiment::default_scenarios(),
            replay_duration: Some(Time::from_millis(50)),
            seed: 0,
            threads: 1,
        }
    }
}

impl OverheadExperiment {
    /// A driver with the default grid: 4 cores, 120 events per trace, 12
    /// traces per point, targets 0.6 / 0.75 / 0.9, scenarios `zero`,
    /// `crpd-light` and `crpd-heavy`.
    pub fn new() -> Self {
        OverheadExperiment::default()
    }

    /// The canonical scenario set: the free baseline, a cache-friendly
    /// 8 KiB working set, and a cache-hostile 2 MiB one.
    pub fn default_scenarios() -> Vec<OverheadScenario> {
        vec![
            OverheadScenario::new("zero", CostModelSpec::Zero),
            OverheadScenario::new("crpd-light", CostModelSpec::Crpd(CrpdCostModel::light())),
            OverheadScenario::new("crpd-heavy", CostModelSpec::Crpd(CrpdCostModel::heavy())),
        ]
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets how many events each churn trace contains.
    pub fn events_per_trace(mut self, events: usize) -> Self {
        self.events_per_trace = events;
        self
    }

    /// Sets how many traces are generated per `(scenario, utilization)`
    /// point.
    pub fn traces_per_point(mut self, traces: usize) -> Self {
        self.traces_per_point = traces;
        self
    }

    /// Sets the target normalized-utilization sweep points.
    pub fn utilization_points(mut self, points: Vec<f64>) -> Self {
        self.utilization_points = points;
        self
    }

    /// Sets the repair bound `k` of the controller.
    pub fn max_repair_moves(mut self, k: usize) -> Self {
        self.max_repair_moves = k;
        self
    }

    /// Sets the cost-model scenarios compared by the sweep.
    pub fn scenarios(mut self, scenarios: Vec<OverheadScenario>) -> Self {
        self.scenarios = scenarios;
        self
    }

    /// Sets the per-epoch replay duration; `None` disables replay.
    pub fn replay_duration(mut self, duration: Option<Time>) -> Self {
        self.replay_duration = duration;
        self
    }

    /// Sets the RNG seed for trace generation.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads (`0` = one per available core).
    /// Results are identical for every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the sweep.
    pub fn run(&self) -> OverheadResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> OverheadResults {
        self.run_full_with_progress(progress).results
    }

    /// The full sweep: results plus the merged telemetry registry the
    /// CLI's `--metrics` flag writes.
    pub fn run_full_with_progress(&self, progress: &dyn ProgressSink) -> OverheadRun {
        let utils = self.utilization_points.len();
        let grid = SweepRunner::new()
            .threads(self.threads)
            .run_grid_with_progress(
                self.seed,
                self.scenarios.len() * utils,
                self.traces_per_point,
                progress,
                |cell| {
                    let scenario = &self.scenarios[cell.point_idx / utils];
                    let util_idx = cell.point_idx % utils;
                    let target = self.utilization_points[util_idx];
                    // Trace seeds depend on the utilization point and set
                    // index only — never on the scenario — so every cost
                    // model decides identical traces and the acceptance
                    // columns are directly comparable.
                    let trace_seed = derive_seed(self.seed, util_idx, cell.set_idx);
                    // A small task population (long inter-arrivals, short
                    // lifetimes) concentrates the offered load in few heavy
                    // tasks, so the traces actually exercise splitting and
                    // repair — the paths a migration charge prices.
                    let events = ChurnGenerator::new()
                        .cores(self.cores)
                        .target_normalized_utilization(target)
                        .mean_interarrival(Time::from_millis(150))
                        .lifetime_range(Time::from_millis(150), Time::from_millis(1_200))
                        .max_task_utilization(0.85)
                        .events(self.events_per_trace)
                        .seed(trace_seed)
                        .generate()
                        .ok()?;
                    let config = OnlineConfig::builder()
                        .cores(self.cores)
                        .max_repair_moves(self.max_repair_moves)
                        .cost_model(scenario.model.clone())
                        .build();
                    let mut controller = AdmissionController::new(config).ok()?;
                    let replay = self.replay_duration.map(ReplayConfig::new);
                    let (_, replay_outcome) = run_trace(&mut controller, &events, replay.as_ref());
                    let registry = controller.metrics().registry().clone();
                    Some((*controller.stats(), replay_outcome, registry))
                },
            );
        let points = self
            .scenarios
            .iter()
            .flat_map(|s| self.utilization_points.iter().map(move |&u| (s, u)))
            .zip(&grid)
            .map(|((scenario, target), traces)| aggregate_point(&scenario.label, target, traces))
            .collect();
        let mut metrics = Registry::new();
        for cell in grid.iter().flatten() {
            metrics.merge(&cell.2);
        }
        OverheadRun {
            results: OverheadResults { points },
            metrics,
        }
    }
}

/// One grid cell's outcome: controller stats, replay tallies, and the
/// cell's telemetry registry.
type OverheadCell = (spms_online::ControllerStats, ReplayOutcome, Registry);

/// Folds one point's per-trace cell outcomes into an [`OverheadPoint`].
fn aggregate_point(scenario: &str, target: f64, traces: &[OverheadCell]) -> OverheadPoint {
    let mut arrivals = 0u64;
    let mut admitted = 0u64;
    let mut splits = 0u64;
    let mut inflation_ns = 0u64;
    let mut replay = ReplayOutcome::default();
    for (stats, outcome, _) in traces {
        arrivals += stats.arrivals;
        admitted += stats.admitted;
        splits += stats.fast_split;
        inflation_ns += stats.inflation_charged_ns;
        replay.absorb(*outcome);
    }
    let ratio = |num: u64, den: u64| {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    };
    OverheadPoint {
        scenario: scenario.to_string(),
        normalized_utilization: target,
        arrivals,
        admitted,
        acceptance_ratio: ratio(admitted, arrivals),
        split_ratio: ratio(splits, admitted),
        inflation_us_per_admission: ratio(inflation_ns, admitted) / 1_000.0,
        replayed_epochs: replay.epochs,
        replay_misses: replay.deadline_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> OverheadExperiment {
        OverheadExperiment::new()
            .cores(2)
            .events_per_trace(40)
            .traces_per_point(4)
            .utilization_points(vec![0.6, 0.9])
            .replay_duration(Some(Time::from_millis(20)))
            .seed(3)
    }

    #[test]
    fn scenarios_decide_the_same_arrivals_and_replay_cleanly() {
        let results = quick().run();
        assert_eq!(results.points().len(), 6, "3 scenarios x 2 points");
        assert_eq!(results.total_replay_misses(), 0);
        // Same traces under every scenario: arrival counts match per
        // utilization point.
        for &u in &[0.6, 0.9] {
            let zero = results.point_at("zero", u).unwrap();
            let light = results.point_at("crpd-light", u).unwrap();
            let heavy = results.point_at("crpd-heavy", u).unwrap();
            assert_eq!(zero.arrivals, light.arrivals);
            assert_eq!(zero.arrivals, heavy.arrivals);
            assert_eq!(zero.inflation_us_per_admission, 0.0);
        }
    }

    #[test]
    fn charging_migrations_never_buys_admissions() {
        let results = quick().run();
        for &u in &[0.6, 0.9] {
            let zero = results.point_at("zero", u).unwrap().acceptance_ratio;
            let light = results.point_at("crpd-light", u).unwrap().acceptance_ratio;
            let heavy = results.point_at("crpd-heavy", u).unwrap().acceptance_ratio;
            assert!(light <= zero + 1e-9);
            assert!(heavy <= light + 1e-9, "a heavier charge admitted more");
        }
    }

    #[test]
    fn the_heavy_working_set_pays_visibly_more_than_the_light_one() {
        let results = quick().run();
        let light = results.point_at("crpd-light", 0.9).unwrap();
        let heavy = results.point_at("crpd-heavy", 0.9).unwrap();
        assert!(
            heavy.inflation_us_per_admission > light.inflation_us_per_admission,
            "heavy {} µs/admit should exceed light {} µs/admit",
            heavy.inflation_us_per_admission,
            light.inflation_us_per_admission
        );
        assert!(light.split_ratio > 0.0, "high load must exercise splitting");
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        let serial = quick().run();
        let parallel = quick().threads(4).run();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn runs_are_reproducible_and_seed_sensitive() {
        assert_eq!(quick().run(), quick().run());
        assert_ne!(quick().run(), quick().seed(99).run());
    }

    #[test]
    fn rendering_contains_every_scenario() {
        let results = quick().run();
        let md = results.render_markdown();
        assert!(md.contains("crpd-heavy"));
        assert!(md.contains("inflate µs/admit"));
        let csv = results.render_csv();
        assert!(csv.starts_with("scenario,normalized_utilization"));
        assert_eq!(csv.lines().count(), 1 + results.points().len());
    }
}
