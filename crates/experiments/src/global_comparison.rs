//! Global vs. partitioned vs. semi-partitioned acceptance comparison
//! (experiment E10).
//!
//! The paper's introduction recalls that partitioning-based scheduling has
//! been shown to outperform global scheduling for hard real-time guarantees.
//! This experiment reproduces that backdrop with the sufficient global tests
//! from `spms-global` next to the partitioned and semi-partitioned algorithms
//! of `spms-core`, over the same random task sets.

use serde::{Deserialize, Serialize};
use spms_analysis::{OverheadModel, UniprocessorTest};
use spms_global::GlobalSchedulabilityTest;
use spms_task::{
    PeriodDistribution, PriorityAssignment, TaskSetGenerator, Time, UtilizationDistribution,
};

use crate::progress::{NullProgress, ProgressSink};
use crate::runner::SweepRunner;
use crate::{same_point, AlgorithmKind};

/// One series of the comparison: either a partitioning algorithm or a global
/// schedulability test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComparisonSeries {
    /// A partitioning (or semi-partitioning) algorithm from `spms-core`.
    Partitioned(AlgorithmKind),
    /// A sufficient global schedulability test from `spms-global`.
    Global(GlobalSchedulabilityTest),
}

impl ComparisonSeries {
    /// Display name used in tables and CSV headers.
    pub fn name(&self) -> &'static str {
        match self {
            ComparisonSeries::Partitioned(kind) => kind.name(),
            ComparisonSeries::Global(test) => test.name(),
        }
    }
}

impl std::fmt::Display for ComparisonSeries {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One utilization point of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonPoint {
    /// Normalized utilization (total utilization / core count).
    pub normalized_utilization: f64,
    /// `(series, accepted fraction)` pairs in series order.
    pub ratios: Vec<(ComparisonSeries, f64)>,
}

impl ComparisonPoint {
    /// The acceptance ratio of one series at this point.
    pub fn ratio(&self, series: ComparisonSeries) -> Option<f64> {
        self.ratios
            .iter()
            .find(|(s, _)| *s == series)
            .map(|(_, r)| *r)
    }
}

/// Results of the global-vs-partitioned comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct GlobalComparisonResults {
    points: Vec<ComparisonPoint>,
    series: Vec<ComparisonSeries>,
}

impl GlobalComparisonResults {
    /// All sweep points in increasing utilization order.
    pub fn points(&self) -> &[ComparisonPoint] {
        &self.points
    }

    /// The series that were compared.
    pub fn series(&self) -> &[ComparisonSeries] {
        &self.series
    }

    /// The acceptance ratio of `series` at the point matching
    /// `normalized_utilization` within a 1e-9 tolerance (`None` when no
    /// sweep point lies within it).
    pub fn ratio_at(&self, normalized_utilization: f64, series: ComparisonSeries) -> Option<f64> {
        self.points
            .iter()
            .find(|p| same_point(p.normalized_utilization, normalized_utilization))
            .and_then(|p| p.ratio(series))
    }

    /// Area under the acceptance-ratio curve for one series.
    pub fn weighted_acceptance(&self, series: ComparisonSeries) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.points.iter().filter_map(|p| p.ratio(series)).sum();
        sum / self.points.len() as f64
    }

    /// Renders a markdown table: one row per utilization point.
    pub fn render_markdown(&self) -> String {
        let mut out = String::from("| U / m |");
        for s in &self.series {
            out.push_str(&format!(" {s} |"));
        }
        out.push_str("\n|---|");
        for _ in &self.series {
            out.push_str("---|");
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("| {:.2} |", p.normalized_utilization));
            for s in &self.series {
                match p.ratio(*s) {
                    Some(r) => out.push_str(&format!(" {r:.2} |")),
                    None => out.push_str(" - |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a CSV with a header row.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("normalized_utilization");
        for s in &self.series {
            out.push(',');
            out.push_str(s.name());
        }
        out.push('\n');
        for p in &self.points {
            out.push_str(&format!("{:.4}", p.normalized_utilization));
            for s in &self.series {
                out.push_str(&format!(",{:.4}", p.ratio(*s).unwrap_or(f64::NAN)));
            }
            out.push('\n');
        }
        out
    }
}

/// Driver for the global-vs-partitioned comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalComparisonExperiment {
    cores: usize,
    tasks_per_set: usize,
    utilization_points: Vec<f64>,
    sets_per_point: usize,
    series: Vec<ComparisonSeries>,
    test: UniprocessorTest,
    overhead: OverheadModel,
    seed: u64,
    threads: usize,
}

impl Default for GlobalComparisonExperiment {
    fn default() -> Self {
        GlobalComparisonExperiment {
            cores: 4,
            tasks_per_set: 16,
            utilization_points: (8..=20).map(|i| i as f64 * 0.05).collect(),
            sets_per_point: 100,
            series: vec![
                ComparisonSeries::Partitioned(AlgorithmKind::FpTs),
                ComparisonSeries::Partitioned(AlgorithmKind::Ffd),
                ComparisonSeries::Global(GlobalSchedulabilityTest::GfbDensity),
                ComparisonSeries::Global(GlobalSchedulabilityTest::BclFixedPriority),
                ComparisonSeries::Global(GlobalSchedulabilityTest::RmUs),
            ],
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::zero(),
            seed: 0,
            threads: 1,
        }
    }
}

impl GlobalComparisonExperiment {
    /// A driver with the defaults: 4 cores, 16 tasks per set, utilization
    /// 0.40 … 1.00, FP-TS and FFD against the three global tests.
    pub fn new() -> Self {
        GlobalComparisonExperiment::default()
    }

    /// Sets the number of cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the number of tasks per generated set.
    pub fn tasks_per_set(mut self, n: usize) -> Self {
        self.tasks_per_set = n;
        self
    }

    /// Sets the normalized-utilization sweep points.
    pub fn utilization_points(mut self, points: Vec<f64>) -> Self {
        self.utilization_points = points;
        self
    }

    /// Sets how many task sets are generated per point.
    pub fn sets_per_point(mut self, sets: usize) -> Self {
        self.sets_per_point = sets;
        self
    }

    /// Sets the series to compare.
    pub fn series(mut self, series: Vec<ComparisonSeries>) -> Self {
        self.series = series;
        self
    }

    /// Sets the overhead model folded into the partitioning analyses (the
    /// global tests are evaluated on the raw task parameters; published
    /// global tests do not model these scheduler overheads, which is part of
    /// the comparison's point).
    pub fn overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker threads (`0` = one per available core).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Runs the sweep.
    pub fn run(&self) -> GlobalComparisonResults {
        self.run_with_progress(&NullProgress)
    }

    /// [`run`](Self::run) with per-cell completion reported to `progress`.
    pub fn run_with_progress(&self, progress: &dyn ProgressSink) -> GlobalComparisonResults {
        let partitioners: Vec<(
            ComparisonSeries,
            Option<Box<dyn spms_core::Partitioner + Send + Sync>>,
        )> = self
            .series
            .iter()
            .map(|s| match s {
                ComparisonSeries::Partitioned(kind) => {
                    (*s, Some(kind.build(self.test, self.overhead)))
                }
                ComparisonSeries::Global(_) => (*s, None),
            })
            .collect();
        let grid = SweepRunner::new()
            .threads(self.threads)
            .run_grid_with_progress(
                self.seed,
                self.utilization_points.len(),
                self.sets_per_point,
                progress,
                |cell| {
                    let normalized = self.utilization_points[cell.point_idx];
                    let generator = TaskSetGenerator::new()
                        .task_count(self.tasks_per_set)
                        .total_utilization(normalized * self.cores as f64)
                        .utilization_distribution(UtilizationDistribution::UUniFastDiscard {
                            max_task_utilization: 1.0,
                        })
                        .period_distribution(PeriodDistribution::LogUniform {
                            min: Time::from_millis(10),
                            max: Time::from_secs(1),
                        })
                        .seed(cell.seed);
                    let mut tasks = generator.generate().ok()?;
                    tasks.assign_priorities(PriorityAssignment::RateMonotonic);
                    Some(
                        partitioners
                            .iter()
                            .map(|(series, partitioner)| match (series, partitioner) {
                                (ComparisonSeries::Partitioned(_), Some(p)) => p
                                    .partition(&tasks, self.cores)
                                    .expect("valid generated task set")
                                    .is_schedulable(),
                                (ComparisonSeries::Global(test), _) => {
                                    test.accepts(&tasks, self.cores)
                                }
                                _ => false,
                            })
                            .collect::<Vec<bool>>(),
                    )
                },
            );
        let points = self
            .utilization_points
            .iter()
            .zip(grid)
            .map(|(&normalized, verdicts)| ComparisonPoint {
                normalized_utilization: normalized,
                ratios: crate::runner::acceptance_ratios(&self.series, &verdicts),
            })
            .collect();
        GlobalComparisonResults {
            points,
            series: self.series.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> GlobalComparisonExperiment {
        GlobalComparisonExperiment::new()
            .tasks_per_set(10)
            .sets_per_point(12)
            .utilization_points(vec![0.3, 0.7, 0.9])
            .seed(17)
    }

    #[test]
    fn every_series_reports_a_probability() {
        let results = quick().run();
        assert_eq!(results.points().len(), 3);
        for p in results.points() {
            assert_eq!(p.ratios.len(), 5);
            for (_, r) in &p.ratios {
                assert!((0.0..=1.0).contains(r));
            }
        }
    }

    #[test]
    fn partitioning_beats_the_global_sufficient_tests() {
        // The backdrop the paper's introduction cites: analysis-wise, the
        // partitioned and semi-partitioned approaches accept far more task
        // sets than the sufficient global tests at high utilization.
        let results = quick().run();
        let fpts = results.weighted_acceptance(ComparisonSeries::Partitioned(AlgorithmKind::FpTs));
        for global in [
            GlobalSchedulabilityTest::GfbDensity,
            GlobalSchedulabilityTest::BclFixedPriority,
            GlobalSchedulabilityTest::RmUs,
        ] {
            let g = results.weighted_acceptance(ComparisonSeries::Global(global));
            assert!(
                fpts >= g,
                "FP-TS ({fpts:.2}) should dominate {global} ({g:.2})"
            );
        }
    }

    #[test]
    fn everything_accepts_light_sets() {
        // At 30% normalized utilization even the most pessimistic test
        // (RM-US, whose bound is m/(3m−2) ≈ 0.4 of the platform) accepts
        // every set.
        let results = quick().run();
        for series in results.series().to_vec() {
            assert_eq!(results.ratio_at(0.3, series), Some(1.0), "{series}");
        }
    }

    #[test]
    fn rendering_contains_every_series() {
        let results = quick().run();
        let md = results.render_markdown();
        let csv = results.render_csv();
        for series in results.series() {
            assert!(md.contains(series.name()));
            assert!(csv.contains(series.name()));
        }
    }

    #[test]
    fn runs_are_reproducible() {
        assert_eq!(quick().run(), quick().run());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_serial() {
        assert_eq!(quick().run(), quick().threads(4).run());
    }
}
