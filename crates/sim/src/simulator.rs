//! The discrete-event scheduler simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use spms_analysis::OverheadModel;
use spms_core::{CoreId, Partition};
use spms_queues::{ReadyQueue, SleepQueue};
use spms_task::Time;

use crate::{Chain, CoreStats, DeadlineMiss, SimulationReport, Trace, TraceEvent, TraceEventKind};

/// Configuration of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// How much scheduling time to simulate.
    pub duration: Time,
    /// Overheads injected at the scheduler's release, dispatch, preemption
    /// and migration points. Use [`OverheadModel::zero`] for an idealised
    /// run.
    pub overhead: OverheadModel,
    /// Whether to record a full event trace (Figure 1 material). Traces of
    /// long runs can be large; leave off for acceptance-ratio experiments.
    pub record_trace: bool,
    /// Maximum sporadic release jitter. [`Time::ZERO`] (the default) keeps
    /// the classic synchronous-periodic release pattern; a positive value
    /// delays every release after the first by a seeded random amount in
    /// `[0, release_jitter]`, so consecutive releases of a task are
    /// separated by at least its period (a legal sporadic arrival
    /// sequence). Deadlines are measured from the actual release.
    pub release_jitter: Time,
    /// Seed of the jitter stream; two runs with equal configurations and
    /// seeds release jobs at identical times.
    pub jitter_seed: u64,
}

impl SimulationConfig {
    /// A configuration with no overhead, no tracing and synchronous
    /// periodic releases (no jitter).
    pub fn new(duration: Time) -> Self {
        SimulationConfig {
            duration,
            overhead: OverheadModel::zero(),
            record_trace: false,
            release_jitter: Time::ZERO,
            jitter_seed: 0,
        }
    }

    /// Sets the injected overhead model (builder style).
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Enables event tracing (builder style).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Enables seeded sporadic release jitter (builder style): each release
    /// after the synchronous one at time zero is delayed by a random amount
    /// in `[0, jitter]` drawn from a ChaCha8 stream seeded with `seed`.
    pub fn with_release_jitter(mut self, jitter: Time, seed: u64) -> Self {
        self.release_jitter = jitter;
        self.jitter_seed = seed;
        self
    }
}

#[derive(Debug, Clone)]
struct Job {
    chain: usize,
    release: Time,
    abs_deadline: Time,
    piece: usize,
    remaining: Time,
    /// Overhead charged to the currently executing piece, attributed to the
    /// core when the piece completes.
    charged: Time,
    needs_cache_reload: bool,
    arrived_by_migration: bool,
    completed: Option<Time>,
}

#[derive(Debug, Clone, Copy)]
struct RunningJob {
    job: usize,
    resumed_at: Time,
    token: u64,
}

struct CoreState {
    ready: ReadyQueue<(u32, u64), usize>,
    sleep: SleepQueue<(Time, usize), ()>,
    running: Option<RunningJob>,
    token: u64,
    stats: CoreStats,
}

impl CoreState {
    fn new() -> Self {
        CoreState {
            ready: ReadyQueue::new(),
            sleep: SleepQueue::new(),
            running: None,
            token: 0,
            stats: CoreStats::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SliceEnd {
    time: Time,
    core: usize,
    token: u64,
}

impl Ord for SliceEnd {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.core, self.token).cmp(&(other.time, other.core, other.token))
    }
}

impl PartialOrd for SliceEnd {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The discrete-event simulator of the semi-partitioned scheduler.
///
/// See the [crate documentation](crate) for an end-to-end example.
pub struct Simulator {
    chains: Vec<Chain>,
    config: SimulationConfig,
    cores: Vec<CoreState>,
    jobs: Vec<Job>,
    slice_events: BinaryHeap<Reverse<SliceEnd>>,
    jitter_rng: Option<ChaCha8Rng>,
    seq: u64,
    now: Time,
    jobs_released: u64,
    jobs_completed: u64,
    preemptions: u64,
    migrations: u64,
    dispatches: u64,
    overhead_time: Time,
    deadline_misses: Vec<DeadlineMiss>,
    trace: Trace,
}

impl Simulator {
    /// Builds a simulator for a partition produced by one of the algorithms
    /// in `spms-core`.
    pub fn new(partition: &Partition, config: SimulationConfig) -> Self {
        Simulator::from_chains(
            Chain::from_partition(partition),
            partition.core_count(),
            config,
        )
    }

    /// Builds a simulator directly from execution chains (used by tests and
    /// by the Figure 1 example, which constructs a two-task scenario by hand).
    pub fn from_chains(chains: Vec<Chain>, cores: usize, config: SimulationConfig) -> Self {
        let jitter_rng = (!config.release_jitter.is_zero())
            .then(|| ChaCha8Rng::seed_from_u64(config.jitter_seed));
        let mut sim = Simulator {
            chains,
            config,
            cores: (0..cores).map(|_| CoreState::new()).collect(),
            jobs: Vec::new(),
            slice_events: BinaryHeap::new(),
            jitter_rng,
            seq: 0,
            now: Time::ZERO,
            jobs_released: 0,
            jobs_completed: 0,
            preemptions: 0,
            migrations: 0,
            dispatches: 0,
            overhead_time: Time::ZERO,
            deadline_misses: Vec::new(),
            trace: Trace::new(),
        };
        // All tasks release synchronously at time zero (the critical instant).
        for (idx, chain) in sim.chains.iter().enumerate() {
            let core = chain.first_core().0;
            sim.cores[core].sleep.add((Time::ZERO, idx), ());
        }
        sim
    }

    /// Runs the simulation to completion and returns the report.
    pub fn run(mut self) -> SimulationReport {
        loop {
            let next_release = self
                .cores
                .iter()
                .filter_map(|c| c.sleep.next_release().map(|(k, ())| k.0))
                .min();
            let next_slice = self.slice_events.peek().map(|Reverse(e)| e.time);
            let next = match (next_release, next_slice) {
                (None, None) => break,
                (Some(r), None) => r,
                (None, Some(s)) => s,
                (Some(r), Some(s)) => r.min(s),
            };
            if next > self.config.duration {
                break;
            }
            self.now = next;
            self.process_slice_ends();
            self.process_releases();
        }
        self.finalise()
    }

    // ------------------------------------------------------------------
    // event handlers
    // ------------------------------------------------------------------

    fn process_slice_ends(&mut self) {
        while let Some(Reverse(ev)) = self.slice_events.peek().copied() {
            if ev.time != self.now {
                break;
            }
            self.slice_events.pop();
            let core = ev.core;
            let Some(running) = self.cores[core].running else {
                continue;
            };
            if running.token != ev.token {
                continue; // stale event from before a preemption
            }
            self.cores[core].running = None;
            self.complete_piece(running.job, core);
        }
    }

    fn process_releases(&mut self) {
        for core in 0..self.cores.len() {
            loop {
                let due = match self.cores[core].sleep.next_release() {
                    Some(((t, chain), ())) if *t == self.now => (*t, *chain),
                    _ => break,
                };
                self.cores[core].sleep.pop_earliest();
                self.release_job(due.1, core);
            }
            self.try_schedule(core);
        }
    }

    fn release_job(&mut self, chain_idx: usize, core: usize) {
        let chain = &self.chains[chain_idx];
        let mut release_charge = self.config.overhead.release
            + self.config.overhead.sleep_queue_delete
            + self.config.overhead.ready_queue_add_local;
        if chain.pieces.len() == 1 {
            // A whole task also pays the sleep-queue insertion when it
            // finishes; pre-charging it keeps the cost attributed to the job
            // that causes it (split chains charge the remote insertion to
            // their tail piece instead).
            release_charge += self.config.overhead.sleep_queue_add_local;
        }
        let job = Job {
            chain: chain_idx,
            release: self.now,
            abs_deadline: self.now + chain.deadline,
            piece: 0,
            remaining: chain.pieces[0].budget + release_charge,
            charged: release_charge,
            needs_cache_reload: false,
            arrived_by_migration: false,
            completed: None,
        };
        let job_idx = self.jobs.len();
        let priority = chain.pieces[0].priority.level();
        self.jobs.push(job);
        self.jobs_released += 1;
        self.seq += 1;
        self.cores[core].ready.add((priority, self.seq), job_idx);
        // Queue the next release on the same (first) core: one period later,
        // plus a seeded sporadic jitter when configured (inter-arrival times
        // never drop below the period, so the sequence stays legal for a
        // sporadic task and the analysis remains sound).
        let jitter = match self.jitter_rng.as_mut() {
            Some(rng) => Time::from_nanos(rng.gen_range(0..=self.config.release_jitter.as_nanos())),
            None => Time::ZERO,
        };
        let next = self.now + chain.period + jitter;
        self.cores[core].sleep.add((next, chain_idx), ());
        if self.config.record_trace {
            let parent = chain.parent;
            self.trace_event(core, parent, TraceEventKind::Release, Time::ZERO, "");
            if !release_charge.is_zero() {
                self.trace_event(
                    core,
                    parent,
                    TraceEventKind::Overhead,
                    release_charge,
                    "rls + sleep-queue delete + ready-queue add",
                );
            }
        }
    }

    fn try_schedule(&mut self, core: usize) {
        // Preempt the running job if a higher-priority job is waiting.
        if let (Some(running), Some((head_key, _))) =
            (self.cores[core].running, self.cores[core].ready.peek())
        {
            let running_priority = self.chains[self.jobs[running.job].chain].pieces
                [self.jobs[running.job].piece]
                .priority
                .level();
            if head_key.0 < running_priority {
                self.preempt(core, running);
            }
        }
        if self.cores[core].running.is_none() {
            if let Some(((_prio, _seq), job_idx)) = self.cores[core].ready.delete_highest() {
                self.dispatch(core, job_idx);
            }
        }
    }

    fn preempt(&mut self, core: usize, running: RunningJob) {
        let executed = self.now.saturating_sub(running.resumed_at);
        let job = &mut self.jobs[running.job];
        job.remaining = job.remaining.saturating_sub(executed);
        job.needs_cache_reload = true;
        // The scheduler puts the preempted job back into the ready queue.
        let requeue_charge = self.config.overhead.ready_queue_add_local;
        job.remaining += requeue_charge;
        job.charged += requeue_charge;
        let priority = self.chains[job.chain].pieces[job.piece].priority.level();
        let parent = self.chains[job.chain].parent;
        self.seq += 1;
        self.cores[core]
            .ready
            .add((priority, self.seq), running.job);
        self.cores[core].running = None;
        self.cores[core].token += 1; // invalidate the outstanding slice end
        self.cores[core].stats.preemptions += 1;
        self.preemptions += 1;
        if self.config.record_trace {
            self.trace_event(core, parent, TraceEventKind::Preempt, Time::ZERO, "");
        }
    }

    fn dispatch(&mut self, core: usize, job_idx: usize) {
        let overhead = &self.config.overhead;
        let cache = if self.jobs[job_idx].arrived_by_migration {
            overhead.cache_reload_migration
        } else if self.jobs[job_idx].needs_cache_reload {
            overhead.cache_reload_local
        } else {
            Time::ZERO
        };
        let dispatch_charge =
            overhead.schedule + overhead.context_switch + overhead.ready_queue_delete + cache;
        let job = &mut self.jobs[job_idx];
        job.remaining += dispatch_charge;
        job.charged += dispatch_charge;
        job.needs_cache_reload = false;
        job.arrived_by_migration = false;
        let remaining = job.remaining;
        let parent = self.chains[job.chain].parent;

        self.cores[core].token += 1;
        let token = self.cores[core].token;
        self.cores[core].running = Some(RunningJob {
            job: job_idx,
            resumed_at: self.now,
            token,
        });
        self.cores[core].stats.dispatches += 1;
        self.dispatches += 1;
        self.slice_events.push(Reverse(SliceEnd {
            time: self.now + remaining,
            core,
            token,
        }));
        if self.config.record_trace {
            self.trace_event(core, parent, TraceEventKind::Dispatch, Time::ZERO, "");
            if !dispatch_charge.is_zero() {
                self.trace_event(
                    core,
                    parent,
                    TraceEventKind::Overhead,
                    dispatch_charge,
                    "sch + cnt_swth + ready-queue delete + cache reload",
                );
            }
        }
    }

    fn complete_piece(&mut self, job_idx: usize, core: usize) {
        let chain_idx = self.jobs[job_idx].chain;
        let piece_idx = self.jobs[job_idx].piece;
        let parent = self.chains[chain_idx].parent;
        let piece_budget = self.chains[chain_idx].pieces[piece_idx].budget;
        let charged = self.jobs[job_idx].charged;
        self.cores[core].stats.busy += piece_budget;
        self.cores[core].stats.overhead += charged;
        self.overhead_time += charged;
        self.jobs[job_idx].charged = Time::ZERO;

        let is_last = piece_idx + 1 == self.chains[chain_idx].pieces.len();
        if is_last {
            self.jobs[job_idx].completed = Some(self.now);
            self.jobs_completed += 1;
            if self.now > self.jobs[job_idx].abs_deadline {
                self.deadline_misses.push(DeadlineMiss {
                    task: parent,
                    release: self.jobs[job_idx].release,
                    deadline: self.jobs[job_idx].abs_deadline,
                    completion: Some(self.now),
                });
                if self.config.record_trace {
                    self.trace_event(core, parent, TraceEventKind::DeadlineMiss, Time::ZERO, "");
                }
            }
            if self.config.record_trace {
                self.trace_event(core, parent, TraceEventKind::Complete, Time::ZERO, "");
            }
        } else {
            // Body subtask exhausted its budget: migrate to the next core.
            let next_piece = &self.chains[chain_idx].pieces[piece_idx + 1];
            let dest = next_piece.core.0;
            let next_is_tail = piece_idx + 2 == self.chains[chain_idx].pieces.len();
            let mut migration_charge = self.config.overhead.schedule
                + self.config.overhead.context_switch
                + self.config.overhead.ready_queue_add_remote;
            if next_is_tail {
                // The tail piece re-inserts the task into the sleep queue of
                // the core hosting the first piece when it finishes (a remote
                // insertion); pre-charge it to the tail piece.
                migration_charge += self.config.overhead.sleep_queue_add_remote;
            }
            {
                let job = &mut self.jobs[job_idx];
                job.piece += 1;
                job.remaining = next_piece.budget + migration_charge;
                job.charged = migration_charge;
                job.arrived_by_migration = true;
            }
            let priority = next_piece.priority.level();
            self.seq += 1;
            self.cores[dest].ready.add((priority, self.seq), job_idx);
            self.cores[dest].stats.preemptions += 0; // no-op, keeps the field visible
            self.migrations += 1;
            if self.config.record_trace {
                self.trace_event(
                    core,
                    parent,
                    TraceEventKind::Migrate,
                    migration_charge,
                    &format!("to P{dest}"),
                );
            }
            self.try_schedule(dest);
        }
        self.try_schedule(core);
    }

    fn trace_event(
        &mut self,
        core: usize,
        task: spms_task::TaskId,
        kind: TraceEventKind,
        duration: Time,
        label: &str,
    ) {
        self.trace.push(TraceEvent {
            time: self.now,
            core: CoreId(core),
            task,
            kind,
            duration,
            label: label.to_owned(),
        });
    }

    fn finalise(mut self) -> SimulationReport {
        // Jobs that never finished but whose deadline fell inside the run are
        // deadline misses too.
        for job in &self.jobs {
            if job.completed.is_none() && job.abs_deadline <= self.config.duration {
                self.deadline_misses.push(DeadlineMiss {
                    task: self.chains[job.chain].parent,
                    release: job.release,
                    deadline: job.abs_deadline,
                    completion: None,
                });
            }
        }
        SimulationReport {
            duration: self.config.duration,
            jobs_released: self.jobs_released,
            jobs_completed: self.jobs_completed,
            deadline_misses: self.deadline_misses,
            preemptions: self.preemptions,
            migrations: self.migrations,
            dispatches: self.dispatches,
            overhead_time: self.overhead_time,
            per_core: self.cores.iter().map(|c| c.stats).collect(),
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_core::{PartitionOutcome, PartitionedFixedPriority, Partitioner, SemiPartitionedFpTs};
    use spms_task::{Priority, Task, TaskSet, TaskSetGenerator};

    fn simple_chain(
        parent: u32,
        budget_ms: u64,
        period_ms: u64,
        priority: u32,
        core: usize,
    ) -> Chain {
        Chain {
            parent: spms_task::TaskId(parent),
            period: Time::from_millis(period_ms),
            deadline: Time::from_millis(period_ms),
            pieces: vec![crate::PieceSpec {
                core: CoreId(core),
                budget: Time::from_millis(budget_ms),
                priority: Priority::new(priority),
                is_body: false,
            }],
        }
    }

    #[test]
    fn single_task_runs_periodically_without_misses() {
        let chains = vec![simple_chain(0, 2, 10, 0, 0)];
        let report =
            Simulator::from_chains(chains, 1, SimulationConfig::new(Time::from_millis(100))).run();
        // The simulated window is inclusive of its end point, so the release
        // at t = 100 ms is counted but its job cannot complete.
        assert_eq!(report.jobs_released, 11);
        assert_eq!(report.jobs_completed, 10);
        assert!(report.no_deadline_misses());
        assert_eq!(report.preemptions, 0);
        assert_eq!(report.core(CoreId(0)).busy, Time::from_millis(20));
        assert!((report.core(CoreId(0)).utilization(report.duration) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn higher_priority_task_preempts_lower() {
        // τ0: C=1,T=4 (high); τ1: C=6,T=20 (low) on one core. τ1 is preempted
        // by at least one release of τ0 during each of its jobs.
        let chains = vec![simple_chain(0, 1, 4, 0, 0), simple_chain(1, 6, 20, 1, 0)];
        let report = Simulator::from_chains(
            chains,
            1,
            SimulationConfig::new(Time::from_millis(40)).with_trace(),
        )
        .run();
        assert!(report.no_deadline_misses());
        assert!(
            report.preemptions >= 2,
            "preemptions = {}",
            report.preemptions
        );
        assert!(report.trace.of_kind(TraceEventKind::Preempt).count() >= 2);
    }

    #[test]
    fn overloaded_core_misses_deadlines() {
        let chains = vec![simple_chain(0, 6, 10, 0, 0), simple_chain(1, 6, 10, 1, 0)];
        let report =
            Simulator::from_chains(chains, 1, SimulationConfig::new(Time::from_millis(50))).run();
        assert!(!report.no_deadline_misses());
        // The lower-priority task is the one missing.
        assert!(report
            .deadline_misses
            .iter()
            .all(|m| m.task == spms_task::TaskId(1)));
    }

    #[test]
    fn split_task_migrates_every_period() {
        let tasks: TaskSet = (0..3)
            .map(|i| Task::new(i, Time::from_millis(6), Time::from_millis(10)).unwrap())
            .collect();
        let partition = SemiPartitionedFpTs::default()
            .partition(&tasks, 2)
            .unwrap()
            .into_partition()
            .expect("schedulable");
        let report =
            Simulator::new(&partition, SimulationConfig::new(Time::from_millis(100))).run();
        assert!(
            report.no_deadline_misses(),
            "misses: {:?}",
            report.deadline_misses
        );
        assert_eq!(
            report.migrations, 10,
            "one migration per period of the split task"
        );
        assert_eq!(report.jobs_released, 33);
        assert_eq!(report.jobs_completed, 30);
    }

    #[test]
    fn overhead_injection_consumes_time_and_can_cause_misses() {
        // Two tasks that only just fit: with large injected overheads the
        // lower-priority one starts missing.
        let chains = vec![simple_chain(0, 5, 10, 0, 0), simple_chain(1, 4, 10, 1, 0)];
        let no_overhead = Simulator::from_chains(
            chains.clone(),
            1,
            SimulationConfig::new(Time::from_millis(100)),
        )
        .run();
        assert!(no_overhead.no_deadline_misses());
        assert_eq!(no_overhead.overhead_time, Time::ZERO);

        let heavy = OverheadModel::paper_n4().scaled(50.0);
        let with_overhead = Simulator::from_chains(
            chains,
            1,
            SimulationConfig::new(Time::from_millis(100)).with_overhead(heavy),
        )
        .run();
        assert!(with_overhead.overhead_time > Time::ZERO);
        assert!(!with_overhead.no_deadline_misses());
        assert!(with_overhead.overhead_fraction() > 0.05);
    }

    #[test]
    fn realistic_overheads_rarely_change_the_outcome() {
        // The paper's headline: measured overheads are small compared to
        // millisecond-scale WCETs.
        let tasks = TaskSetGenerator::new()
            .task_count(8)
            .total_utilization(2.8)
            .seed(11)
            .generate()
            .unwrap();
        let partition = PartitionedFixedPriority::ffd()
            .partition(&tasks, 4)
            .unwrap()
            .into_partition()
            .expect("schedulable");
        let report = Simulator::new(
            &partition,
            SimulationConfig::new(Time::from_secs(2)).with_overhead(OverheadModel::paper_n4()),
        )
        .run();
        assert!(report.no_deadline_misses());
        assert!(report.overhead_fraction() < 0.1);
    }

    #[test]
    fn analysis_accepted_partitions_do_not_miss_in_simulation() {
        // E7: sets accepted by the overhead-aware analysis must simulate
        // cleanly when the same overheads are injected at run time.
        for seed in 0..5 {
            let tasks = TaskSetGenerator::new()
                .task_count(10)
                .total_utilization(3.0)
                .seed(300 + seed)
                .generate()
                .unwrap();
            let outcome = SemiPartitionedFpTs::default()
                .with_overhead(OverheadModel::paper_n4())
                .partition(&tasks, 4)
                .unwrap();
            let PartitionOutcome::Schedulable(partition) = outcome else {
                continue;
            };
            // The partition's WCETs are already inflated by the analysis;
            // injecting the overheads again at run time is doubly
            // conservative, so the absence of misses is a strong check.
            let report =
                Simulator::new(&partition, SimulationConfig::new(Time::from_secs(1))).run();
            assert!(
                report.no_deadline_misses(),
                "seed {seed}: {:?}",
                report.deadline_misses
            );
        }
    }

    #[test]
    fn trace_records_release_dispatch_complete() {
        let chains = vec![simple_chain(0, 2, 10, 0, 0)];
        let report = Simulator::from_chains(
            chains,
            1,
            SimulationConfig::new(Time::from_millis(30)).with_trace(),
        )
        .run();
        assert_eq!(report.trace.of_kind(TraceEventKind::Release).count(), 4);
        assert_eq!(report.trace.of_kind(TraceEventKind::Dispatch).count(), 4);
        assert_eq!(report.trace.of_kind(TraceEventKind::Complete).count(), 3);
        assert!(!report.trace.render_timeline().is_empty());
    }

    #[test]
    fn release_jitter_is_deterministic_per_seed() {
        let chains = vec![simple_chain(0, 2, 10, 0, 0), simple_chain(1, 3, 20, 1, 0)];
        let run = |seed: u64| {
            Simulator::from_chains(
                chains.clone(),
                1,
                SimulationConfig::new(Time::from_millis(200))
                    .with_release_jitter(Time::from_millis(5), seed),
            )
            .run()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.jobs_released, b.jobs_released);
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.preemptions, b.preemptions);
        // A different seed shifts releases and is overwhelmingly likely to
        // change at least the release count over 20 periods.
        let c = run(43);
        assert!(
            a.jobs_released != c.jobs_released || a.preemptions != c.preemptions,
            "seeds 42 and 43 produced identical schedules"
        );
    }

    #[test]
    fn release_jitter_only_stretches_interarrival_times() {
        // Sporadic releases are never earlier than periodic ones, so a
        // jittered run releases at most as many jobs.
        let chains = vec![simple_chain(0, 2, 10, 0, 0)];
        let periodic = Simulator::from_chains(
            chains.clone(),
            1,
            SimulationConfig::new(Time::from_millis(100)),
        )
        .run();
        let jittered = Simulator::from_chains(
            chains,
            1,
            SimulationConfig::new(Time::from_millis(100))
                .with_release_jitter(Time::from_millis(4), 7),
        )
        .run();
        assert!(jittered.jobs_released <= periodic.jobs_released);
        assert!(jittered.jobs_released >= 7, "jitter cannot halve the rate");
        assert!(jittered.no_deadline_misses());
    }

    #[test]
    fn schedulable_partitions_stay_clean_under_jitter() {
        // A partition accepted by the (sporadic) RTA must not miss deadlines
        // when releases are sporadic rather than synchronous-periodic.
        for seed in 0..3 {
            let tasks = TaskSetGenerator::new()
                .task_count(8)
                .total_utilization(2.4)
                .seed(400 + seed)
                .generate()
                .unwrap();
            let partition = SemiPartitionedFpTs::default()
                .partition(&tasks, 4)
                .unwrap()
                .into_partition()
                .expect("schedulable");
            let report = Simulator::new(
                &partition,
                SimulationConfig::new(Time::from_secs(1))
                    .with_release_jitter(Time::from_millis(3), seed),
            )
            .run();
            assert!(
                report.no_deadline_misses(),
                "seed {seed}: {:?}",
                report.deadline_misses
            );
        }
    }

    #[test]
    fn zero_jitter_matches_the_periodic_baseline() {
        let chains = vec![simple_chain(0, 2, 10, 0, 0)];
        let baseline = Simulator::from_chains(
            chains.clone(),
            1,
            SimulationConfig::new(Time::from_millis(50)),
        )
        .run();
        let zero_jitter = Simulator::from_chains(
            chains,
            1,
            SimulationConfig::new(Time::from_millis(50)).with_release_jitter(Time::ZERO, 12345),
        )
        .run();
        assert_eq!(baseline.jobs_released, zero_jitter.jobs_released);
        assert_eq!(baseline.jobs_completed, zero_jitter.jobs_completed);
    }

    #[test]
    fn duration_zero_releases_nothing_but_time_zero_jobs() {
        let chains = vec![simple_chain(0, 2, 10, 0, 0)];
        let report = Simulator::from_chains(chains, 1, SimulationConfig::new(Time::ZERO)).run();
        // Only the synchronous release at t = 0 happens and the job cannot
        // finish within a zero-length window.
        assert_eq!(report.jobs_released, 1);
        assert_eq!(report.jobs_completed, 0);
    }
}
