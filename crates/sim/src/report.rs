//! Simulation results: deadline misses, scheduling statistics, per-core load.

use spms_core::CoreId;
use spms_task::{TaskId, Time};

use crate::Trace;

/// One missed deadline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineMiss {
    /// The task whose job missed.
    pub task: TaskId,
    /// Release time of the offending job.
    pub release: Time,
    /// Absolute deadline of the offending job.
    pub deadline: Time,
    /// Completion time, or `None` if the job had not finished when the
    /// simulation ended.
    pub completion: Option<Time>,
}

impl DeadlineMiss {
    /// By how much the deadline was overrun (up to the end of simulation for
    /// unfinished jobs, in which case this is a lower bound).
    pub fn tardiness(&self, simulation_end: Time) -> Time {
        self.completion
            .unwrap_or(simulation_end)
            .saturating_sub(self.deadline)
    }
}

/// Per-core activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Time the core spent executing task work.
    pub busy: Time,
    /// Time the core spent executing scheduler overhead charged to jobs.
    pub overhead: Time,
    /// Number of dispatches (context switches to a job).
    pub dispatches: u64,
    /// Number of preemptions of a running job.
    pub preemptions: u64,
}

impl CoreStats {
    /// Core utilisation over the simulated duration (busy + overhead time
    /// divided by wall-clock simulation length).
    pub fn utilization(&self, duration: Time) -> f64 {
        if duration.is_zero() {
            0.0
        } else {
            (self.busy + self.overhead).ratio(duration)
        }
    }
}

/// The outcome of a simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimulationReport {
    /// How long was simulated.
    pub duration: Time,
    /// Jobs released during the run.
    pub jobs_released: u64,
    /// Jobs that completed during the run.
    pub jobs_completed: u64,
    /// All deadline misses observed (including jobs unfinished at the end).
    pub deadline_misses: Vec<DeadlineMiss>,
    /// Total preemptions across all cores.
    pub preemptions: u64,
    /// Total cross-core migrations of split tasks.
    pub migrations: u64,
    /// Total dispatches (context switches to a job) across all cores.
    pub dispatches: u64,
    /// Total scheduler-overhead time charged to jobs.
    pub overhead_time: Time,
    /// Per-core counters, indexed by core id.
    pub per_core: Vec<CoreStats>,
    /// The event trace, populated when tracing was enabled in the
    /// configuration.
    pub trace: Trace,
}

impl SimulationReport {
    /// Whether every job met its deadline.
    pub fn no_deadline_misses(&self) -> bool {
        self.deadline_misses.is_empty()
    }

    /// Counters for one core.
    ///
    /// # Panics
    ///
    /// Panics if the core id is out of range.
    pub fn core(&self, core: CoreId) -> &CoreStats {
        &self.per_core[core.0]
    }

    /// Average observed utilisation across all cores.
    pub fn average_utilization(&self) -> f64 {
        if self.per_core.is_empty() {
            return 0.0;
        }
        self.per_core
            .iter()
            .map(|c| c.utilization(self.duration))
            .sum::<f64>()
            / self.per_core.len() as f64
    }

    /// Fraction of all charged core time that was scheduler overhead.
    pub fn overhead_fraction(&self) -> f64 {
        let busy: Time = self.per_core.iter().map(|c| c.busy).sum();
        let total = busy + self.overhead_time;
        if total.is_zero() {
            0.0
        } else {
            self.overhead_time.ratio(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadline_miss_tardiness() {
        let finished = DeadlineMiss {
            task: TaskId(0),
            release: Time::ZERO,
            deadline: Time::from_millis(10),
            completion: Some(Time::from_millis(12)),
        };
        assert_eq!(
            finished.tardiness(Time::from_millis(100)),
            Time::from_millis(2)
        );
        let unfinished = DeadlineMiss {
            completion: None,
            ..finished
        };
        assert_eq!(
            unfinished.tardiness(Time::from_millis(100)),
            Time::from_millis(90)
        );
    }

    #[test]
    fn core_stats_utilization() {
        let stats = CoreStats {
            busy: Time::from_millis(40),
            overhead: Time::from_millis(10),
            dispatches: 5,
            preemptions: 1,
        };
        assert!((stats.utilization(Time::from_millis(100)) - 0.5).abs() < 1e-12);
        assert_eq!(stats.utilization(Time::ZERO), 0.0);
    }

    #[test]
    fn report_aggregates() {
        let report = SimulationReport {
            duration: Time::from_millis(100),
            per_core: vec![
                CoreStats {
                    busy: Time::from_millis(50),
                    overhead: Time::from_millis(10),
                    ..CoreStats::default()
                },
                CoreStats {
                    busy: Time::from_millis(30),
                    overhead: Time::ZERO,
                    ..CoreStats::default()
                },
            ],
            overhead_time: Time::from_millis(10),
            ..SimulationReport::default()
        };
        assert!(report.no_deadline_misses());
        assert!((report.average_utilization() - 0.45).abs() < 1e-12);
        assert!((report.overhead_fraction() - 10.0 / 90.0).abs() < 1e-12);
        assert_eq!(report.core(CoreId(1)).busy, Time::from_millis(30));
    }
}
