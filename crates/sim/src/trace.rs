//! Event traces: the raw material behind the paper's Figure 1.

use std::fmt;

use spms_core::CoreId;
use spms_task::{TaskId, Time};

/// What happened at a trace point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A job of the task was released (paper: `release()` / `rls`).
    Release,
    /// The scheduler dispatched the job on a core (paper: `sch()` + `cnt_swth()`).
    Dispatch,
    /// The running job was preempted by a higher-priority job.
    Preempt,
    /// A body subtask exhausted its budget and the job migrated to the next
    /// core in its chain.
    Migrate,
    /// The job completed all of its work for this release.
    Complete,
    /// The job missed its absolute deadline.
    DeadlineMiss,
    /// Scheduler overhead time was consumed on the core (release path,
    /// scheduling decision, context switch, queue operation or cache reload).
    Overhead,
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TraceEventKind::Release => "release",
            TraceEventKind::Dispatch => "dispatch",
            TraceEventKind::Preempt => "preempt",
            TraceEventKind::Migrate => "migrate",
            TraceEventKind::Complete => "complete",
            TraceEventKind::DeadlineMiss => "deadline-miss",
            TraceEventKind::Overhead => "overhead",
        };
        f.write_str(s)
    }
}

/// One entry of the simulator's event trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: Time,
    /// Core on which the event happened.
    pub core: CoreId,
    /// Task concerned.
    pub task: TaskId,
    /// Kind of event.
    pub kind: TraceEventKind,
    /// Extra duration attached to the event (used by
    /// [`TraceEventKind::Overhead`] entries to carry the overhead length).
    pub duration: Time,
    /// Free-form label (which overhead component, migration destination, ...).
    pub label: String,
}

/// A chronological list of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace { events: Vec::new() }
    }

    /// Appends an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// All events in chronological (insertion) order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events of one kind.
    pub fn of_kind(&self, kind: TraceEventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Events concerning one task.
    pub fn of_task(&self, task: TaskId) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.task == task)
    }

    /// Renders the trace as a simple text timeline (one line per event), the
    /// format used by the `preemption_anatomy` example to reproduce Figure 1.
    pub fn render_timeline(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let duration = if e.duration.is_zero() {
                String::new()
            } else {
                format!(" (+{})", e.duration)
            };
            let label = if e.label.is_empty() {
                String::new()
            } else {
                format!(" [{}]", e.label)
            };
            out.push_str(&format!(
                "{:>12}  {}  {:<13} {}{}{}\n",
                e.time.to_string(),
                e.core,
                e.kind.to_string(),
                e.task,
                duration,
                label
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(us: u64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            time: Time::from_micros(us),
            core: CoreId(0),
            task: TaskId(1),
            kind,
            duration: Time::ZERO,
            label: String::new(),
        }
    }

    #[test]
    fn push_and_filter() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.push(event(0, TraceEventKind::Release));
        trace.push(event(1, TraceEventKind::Dispatch));
        trace.push(event(5, TraceEventKind::Complete));
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.of_kind(TraceEventKind::Dispatch).count(), 1);
        assert_eq!(trace.of_task(TaskId(1)).count(), 3);
        assert_eq!(trace.of_task(TaskId(9)).count(), 0);
    }

    #[test]
    fn timeline_rendering_contains_all_kinds() {
        let mut trace = Trace::new();
        trace.push(event(0, TraceEventKind::Release));
        trace.push(TraceEvent {
            duration: Time::from_micros(3),
            label: "rls".to_owned(),
            ..event(0, TraceEventKind::Overhead)
        });
        trace.push(event(10, TraceEventKind::Migrate));
        let text = trace.render_timeline();
        assert!(text.contains("release"));
        assert!(text.contains("overhead"));
        assert!(text.contains("migrate"));
        assert!(text.contains("rls"));
        assert!(text.contains("+3us"));
    }

    #[test]
    fn kind_display_is_stable() {
        assert_eq!(TraceEventKind::DeadlineMiss.to_string(), "deadline-miss");
        assert_eq!(TraceEventKind::Complete.to_string(), "complete");
    }
}
