//! Execution chains: the simulator's view of a partitioned task.
//!
//! A whole task is a chain with one piece; a split task is a chain of body
//! pieces followed by a tail piece, each pinned to its own core. The chain is
//! derived from the [`Partition`](spms_core::Partition) produced by the
//! partitioning algorithms.

use spms_core::{CoreId, Partition, SubtaskKind};
use spms_task::{Priority, TaskId, Time};

/// One piece of a chain: a budget to execute on a specific core at a specific
/// priority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PieceSpec {
    /// Core the piece executes on.
    pub core: CoreId,
    /// Execution budget of the piece.
    pub budget: Time,
    /// Fixed priority of the piece on its core.
    pub priority: Priority,
    /// Whether this piece is a migrating body piece (every piece except the
    /// last of a split chain).
    pub is_body: bool,
}

/// The per-task execution chain extracted from a partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chain {
    /// The task this chain belongs to.
    pub parent: TaskId,
    /// Minimum inter-arrival time of the task.
    pub period: Time,
    /// Relative deadline of the *whole* task (not of individual pieces).
    pub deadline: Time,
    /// The pieces in execution order.
    pub pieces: Vec<PieceSpec>,
}

impl Chain {
    /// Total execution demand across all pieces.
    pub fn total_budget(&self) -> Time {
        self.pieces.iter().map(|p| p.budget).sum()
    }

    /// Whether the chain was split across more than one core.
    pub fn is_split(&self) -> bool {
        self.pieces.len() > 1
    }

    /// The core the task is released on (the first piece's core).
    pub fn first_core(&self) -> CoreId {
        self.pieces[0].core
    }

    /// Builds the chains for every task in a partition.
    ///
    /// # Panics
    ///
    /// Panics if the partition is malformed (e.g. a split chain with missing
    /// pieces); partitions produced by the algorithms in `spms-core` are
    /// always well formed (see [`Partition::validate`]).
    pub fn from_partition(partition: &Partition) -> Vec<Chain> {
        use std::collections::BTreeMap;
        let mut chains: BTreeMap<TaskId, Vec<(usize, PieceSpec, Time, Time)>> = BTreeMap::new();
        for (core, placed) in partition.iter() {
            let (index, is_body, whole_deadline) = match &placed.split {
                None => (0, false, placed.task.deadline()),
                Some(info) => (
                    info.part_index,
                    matches!(info.kind, SubtaskKind::Body),
                    // The tail piece's synthetic deadline plus its release
                    // offset reconstructs the parent's relative deadline.
                    info.release_offset + placed.task.deadline(),
                ),
            };
            let piece = PieceSpec {
                core,
                // The simulator executes the pure runtime budget; the
                // scheduler overheads are injected by the simulator itself
                // according to its configured overhead model.
                budget: placed.execution,
                priority: placed.task.priority().unwrap_or(Priority::LOWEST),
                is_body,
            };
            chains.entry(placed.parent).or_default().push((
                index,
                piece,
                placed.task.period(),
                whole_deadline,
            ));
        }
        chains
            .into_iter()
            .map(|(parent, mut pieces)| {
                pieces.sort_by_key(|(index, _, _, _)| *index);
                let period = pieces[0].2;
                // For split chains only the tail carries the reconstructed
                // whole-task deadline; take the maximum across pieces.
                let deadline = pieces
                    .iter()
                    .map(|(_, _, _, d)| *d)
                    .max()
                    .expect("chain has at least one piece");
                Chain {
                    parent,
                    period,
                    deadline,
                    pieces: pieces.into_iter().map(|(_, p, _, _)| p).collect(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_core::{Partitioner, SemiPartitionedFpTs};
    use spms_task::{Task, TaskSet};

    fn split_partition() -> Partition {
        let tasks: TaskSet = (0..3)
            .map(|i| Task::new(i, Time::from_millis(6), Time::from_millis(10)).unwrap())
            .collect();
        SemiPartitionedFpTs::default()
            .partition(&tasks, 2)
            .unwrap()
            .into_partition()
            .expect("schedulable")
    }

    #[test]
    fn chains_cover_every_task() {
        let partition = split_partition();
        let chains = Chain::from_partition(&partition);
        assert_eq!(chains.len(), 3);
        let split: Vec<&Chain> = chains.iter().filter(|c| c.is_split()).collect();
        assert_eq!(split.len(), 1);
        assert_eq!(split[0].pieces.len(), 2);
        assert!(split[0].pieces[0].is_body);
        assert!(!split[0].pieces[1].is_body);
        // The two pieces live on different cores.
        assert_ne!(split[0].pieces[0].core, split[0].pieces[1].core);
    }

    #[test]
    fn split_chain_budget_equals_parent_wcet() {
        let chains = Chain::from_partition(&split_partition());
        for chain in &chains {
            assert_eq!(chain.total_budget(), Time::from_millis(6));
            assert_eq!(chain.period, Time::from_millis(10));
            assert_eq!(chain.deadline, Time::from_millis(10));
        }
    }

    #[test]
    fn first_core_is_the_first_piece() {
        let chains = Chain::from_partition(&split_partition());
        for chain in &chains {
            assert_eq!(chain.first_core(), chain.pieces[0].core);
        }
    }
}
