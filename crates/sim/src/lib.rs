//! # spms-sim
//!
//! A discrete-event simulator of the paper's semi-partitioned fixed-priority
//! scheduler (§2): per-core ready queues (binomial heaps) and sleep queues
//! (red-black trees), normal tasks pinned to one core, split tasks whose body
//! subtasks migrate to the next core when their budget is exhausted, and the
//! run-time overheads of §3 (release, scheduling, context switch, queue
//! operations, cache reload) injected at exactly the points where the Linux
//! implementation pays them.
//!
//! The simulator consumes a [`Partition`](spms_core::Partition) produced by
//! one of the algorithms in `spms-core` and reports deadline misses,
//! preemption/migration counts, per-core utilisation and (optionally) a full
//! event trace — the trace behind the paper's Figure 1.
//!
//! # Example
//!
//! ```
//! use spms_core::{Partitioner, SemiPartitionedFpTs};
//! use spms_sim::{SimulationConfig, Simulator};
//! use spms_task::{Task, TaskSet, Time};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let tasks: TaskSet = (0..3)
//!     .map(|i| Task::new(i, Time::from_millis(6), Time::from_millis(10)))
//!     .collect::<Result<_, _>>()?;
//! let partition = SemiPartitionedFpTs::default()
//!     .partition(&tasks, 2)?
//!     .into_partition()
//!     .expect("schedulable");
//!
//! let report = Simulator::new(&partition, SimulationConfig::new(Time::from_millis(100))).run();
//! assert_eq!(report.deadline_misses.len(), 0);
//! assert!(report.migrations > 0, "the split task migrates every period");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod report;
mod simulator;
mod trace;

pub use chain::{Chain, PieceSpec};
pub use report::{CoreStats, DeadlineMiss, SimulationReport};
pub use simulator::{SimulationConfig, Simulator};
pub use trace::{Trace, TraceEvent, TraceEventKind};
