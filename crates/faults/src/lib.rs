//! Seeded deterministic fault-injection plans for the online admission
//! engine.
//!
//! Chaos testing is only useful here if it preserves the workspace's core
//! determinism contract: the same seed and fault plan must produce the
//! same run, byte for byte, at any `--threads`. So a fault plan is not a
//! background thread flipping coins — it is a plain, pre-materialized list
//! of timestamped [`FaultEvent`]s that the online event loop merges into
//! its heap like any other scheduled work. Injection order, recovery
//! order, and every telemetry counter downstream are then pure functions
//! of (workload seed, fault plan).
//!
//! Plans come from two places:
//!
//! * a [`FaultSpec`] — rate knobs plus a seed, parsed from a CLI string
//!   like `crash=1,stall=2,corrupt=1,seed=7`, expanded into concrete
//!   events by [`FaultSpec::plan`] via a dedicated ChaCha8 stream; or
//! * a JSON-lines script ([`FaultPlan::from_script`] /
//!   [`FaultPlan::to_script`]), one `FaultEvent` per line, for replaying
//!   a hand-written or previously generated scenario exactly.
//!
//! What each [`FaultKind`] *means* (crash → drain + re-admit elsewhere,
//! stall → exclude from placement, corruption → audit bait, cost spike →
//! inflated migration charge) is the admission service's business; this
//! crate only describes the faults.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// One typed fault to inject, with its parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The shard dies: its residency must be drained and re-admitted onto
    /// the survivors. It rejoins empty after `down_ms` milliseconds.
    ShardCrash {
        /// Index of the shard to kill.
        shard: usize,
        /// How long the shard stays down before rejoining.
        down_ms: u64,
    },
    /// The shard freezes for `ms` milliseconds: it keeps its residents but
    /// is excluded from new placements until the stall ends.
    ShardStall {
        /// Index of the shard to stall.
        shard: usize,
        /// Stall duration.
        ms: u64,
    },
    /// Flips one memoized response time in the shard's analysis cache on
    /// `core`, so a later self-audit has something real to detect.
    CacheCorruption {
        /// Index of the shard whose cache to corrupt.
        shard: usize,
        /// Core index *within the shard's partition* to corrupt.
        core: usize,
    },
    /// Multiplies the cross-shard migration charge by `factor` for `ms`
    /// milliseconds, pressuring the admission cost model.
    CostSpike {
        /// Cost multiplier (≥ 1; 1 is a no-op spike).
        factor: u32,
        /// Spike duration.
        ms: u64,
    },
}

impl FaultKind {
    /// How long the fault's effect lasts. Zero-duration faults
    /// (corruption) are instantaneous state flips with no scheduled end —
    /// they are undone by repair, not by time.
    pub fn duration_ms(&self) -> u64 {
        match self {
            FaultKind::ShardCrash { down_ms, .. } => *down_ms,
            FaultKind::ShardStall { ms, .. } => *ms,
            FaultKind::CacheCorruption { .. } => 0,
            FaultKind::CostSpike { ms, .. } => *ms,
        }
    }

    /// Stable lowercase label for logs and counters.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::ShardCrash { .. } => "shard_crash",
            FaultKind::ShardStall { .. } => "shard_stall",
            FaultKind::CacheCorruption { .. } => "cache_corruption",
            FaultKind::CostSpike { .. } => "cost_spike",
        }
    }
}

/// A fault scheduled at an absolute scenario time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Scenario time at which the fault fires, in milliseconds.
    pub at_ms: u64,
    /// The fault itself.
    pub kind: FaultKind,
}

/// An ordered list of faults to inject into one run. Events are kept
/// sorted by time (stable, so same-time events keep insertion order and
/// the event loop's deterministic tie-shuffle does the rest).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan (inject nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds one event, keeping the plan sorted by `at_ms`.
    pub fn push(&mut self, event: FaultEvent) {
        let at = self
            .events
            .partition_point(|existing| existing.at_ms <= event.at_ms);
        self.events.insert(at, event);
    }

    /// The scheduled events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Parses a JSON-lines script: one [`FaultEvent`] per line, blank
    /// lines and `#` comments skipped. Events may appear in any order —
    /// the plan re-sorts by time.
    pub fn from_script(script: &str) -> Result<FaultPlan, FaultParseError> {
        let mut plan = FaultPlan::new();
        for (lineno, line) in script.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let event: FaultEvent = serde_json::from_str(line).map_err(|err| FaultParseError {
                what: format!("script line {}: {err}", lineno + 1),
            })?;
            plan.push(event);
        }
        Ok(plan)
    }

    /// Renders the plan as a JSON-lines script that
    /// [`from_script`](Self::from_script) reads back verbatim.
    pub fn to_script(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&serde_json::to_string(event).expect("FaultEvent serializes"));
            out.push('\n');
        }
        out
    }
}

/// Rate knobs for generated fault plans, parsed from the CLI's `--faults`
/// string (e.g. `crash=1,stall=2,corrupt=1,spike=1,seed=7`). Counts
/// default to zero and the seed to [`FaultSpec::DEFAULT_SEED`], so
/// `crash=1` alone is a valid spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Number of [`FaultKind::ShardCrash`] events to draw.
    pub crashes: u32,
    /// Number of [`FaultKind::ShardStall`] events to draw.
    pub stalls: u32,
    /// Number of [`FaultKind::CacheCorruption`] events to draw.
    pub corruptions: u32,
    /// Number of [`FaultKind::CostSpike`] events to draw.
    pub cost_spikes: u32,
    /// Seed for the dedicated fault ChaCha8 stream (independent of the
    /// workload seed, so adding faults never perturbs workload draws).
    pub seed: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            crashes: 0,
            stalls: 0,
            corruptions: 0,
            cost_spikes: 0,
            seed: FaultSpec::DEFAULT_SEED,
        }
    }
}

impl FaultSpec {
    /// Default fault-stream seed when the spec does not name one.
    pub const DEFAULT_SEED: u64 = 0xFA_017;

    /// Parses the CLI knob string. Keys: `crash`, `stall`, `corrupt`,
    /// `spike` (counts) and `seed`. Unknown keys and malformed values are
    /// errors, not silently ignored — a typoed chaos run must not quietly
    /// test nothing.
    pub fn parse(spec: &str) -> Result<FaultSpec, FaultParseError> {
        let mut out = FaultSpec::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let Some((key, value)) = part.split_once('=') else {
                return Err(FaultParseError {
                    what: format!("expected key=value, got `{part}`"),
                });
            };
            let parse_u32 = |v: &str| {
                v.trim().parse::<u32>().map_err(|_| FaultParseError {
                    what: format!("`{key}` wants an unsigned count, got `{v}`"),
                })
            };
            match key.trim() {
                "crash" => out.crashes = parse_u32(value)?,
                "stall" => out.stalls = parse_u32(value)?,
                "corrupt" => out.corruptions = parse_u32(value)?,
                "spike" => out.cost_spikes = parse_u32(value)?,
                "seed" => {
                    out.seed = value.trim().parse::<u64>().map_err(|_| FaultParseError {
                        what: format!("`seed` wants a u64, got `{value}`"),
                    })?
                }
                other => {
                    return Err(FaultParseError {
                        what: format!(
                            "unknown fault knob `{other}` \
                             (known: crash, stall, corrupt, spike, seed)"
                        ),
                    })
                }
            }
        }
        Ok(out)
    }

    /// Total events this spec will draw.
    pub fn event_count(&self) -> u32 {
        self.crashes + self.stalls + self.corruptions + self.cost_spikes
    }

    /// Expands the spec into a concrete [`FaultPlan`] for a scenario of
    /// `horizon_ms` with `shards` shards of `cores_per_shard` cores each.
    /// Deterministic in the spec alone: the draw order is fixed (crashes,
    /// then stalls, corruptions, spikes), so the same spec yields the
    /// same plan regardless of thread count or platform.
    ///
    /// Fault times land in the middle 80% of the horizon so crashes have
    /// workload behind them to drain and room ahead to recover and
    /// rejoin; durations are drawn between 5% and 20% of the horizon.
    pub fn plan(&self, horizon_ms: u64, shards: usize, cores_per_shard: usize) -> FaultPlan {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut plan = FaultPlan::new();
        let span = horizon_ms.max(10);
        let (lo, hi) = (span / 10, (span * 9 / 10).max(span / 10 + 1));
        let dur = |rng: &mut ChaCha8Rng| rng.gen_range((span / 20).max(1)..(span / 5).max(2));
        let shard = |rng: &mut ChaCha8Rng| rng.gen_range(0..shards.max(1));
        for _ in 0..self.crashes {
            let (shard, at_ms, down_ms) = (shard(&mut rng), rng.gen_range(lo..hi), dur(&mut rng));
            plan.push(FaultEvent {
                at_ms,
                kind: FaultKind::ShardCrash { shard, down_ms },
            });
        }
        for _ in 0..self.stalls {
            let (shard, at_ms, ms) = (shard(&mut rng), rng.gen_range(lo..hi), dur(&mut rng));
            plan.push(FaultEvent {
                at_ms,
                kind: FaultKind::ShardStall { shard, ms },
            });
        }
        for _ in 0..self.corruptions {
            let (shard, at_ms) = (shard(&mut rng), rng.gen_range(lo..hi));
            let core = rng.gen_range(0..cores_per_shard.max(1));
            plan.push(FaultEvent {
                at_ms,
                kind: FaultKind::CacheCorruption { shard, core },
            });
        }
        for _ in 0..self.cost_spikes {
            let (at_ms, ms) = (rng.gen_range(lo..hi), dur(&mut rng));
            let factor = rng.gen_range(2..8u32);
            plan.push(FaultEvent {
                at_ms,
                kind: FaultKind::CostSpike { factor, ms },
            });
        }
        plan
    }
}

/// Error from [`FaultSpec::parse`] or [`FaultPlan::from_script`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultParseError {
    what: String,
}

impl std::fmt::Display for FaultParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fault spec: {}", self.what)
    }
}

impl std::error::Error for FaultParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_knobs_and_defaults() {
        let spec = FaultSpec::parse("crash=1, stall=2,corrupt=3,spike=4,seed=99").unwrap();
        assert_eq!(
            spec,
            FaultSpec {
                crashes: 1,
                stalls: 2,
                corruptions: 3,
                cost_spikes: 4,
                seed: 99,
            }
        );
        let partial = FaultSpec::parse("crash=2").unwrap();
        assert_eq!(partial.crashes, 2);
        assert_eq!(partial.stalls, 0);
        assert_eq!(partial.seed, FaultSpec::DEFAULT_SEED);
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::default());
    }

    #[test]
    fn spec_rejects_unknown_and_malformed_knobs() {
        assert!(FaultSpec::parse("crashes=1").is_err());
        assert!(FaultSpec::parse("crash").is_err());
        assert!(FaultSpec::parse("crash=lots").is_err());
        assert!(FaultSpec::parse("seed=-3").is_err());
    }

    #[test]
    fn plan_generation_is_deterministic_and_sorted() {
        let spec = FaultSpec::parse("crash=2,stall=2,corrupt=2,spike=2,seed=7").unwrap();
        let a = spec.plan(1000, 4, 4);
        let b = spec.plan(1000, 4, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), spec.event_count() as usize);
        assert!(a.events().windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        // Every draw lands inside the middle band with room to recover.
        assert!(a.events().iter().all(|e| e.at_ms >= 100 && e.at_ms < 900));
        // A different seed moves the plan.
        let other = FaultSpec { seed: 8, ..spec }.plan(1000, 4, 4);
        assert_ne!(a, other);
    }

    #[test]
    fn script_round_trips_with_comments_and_blanks() {
        let spec = FaultSpec::parse("crash=1,stall=1,corrupt=1,spike=1,seed=3").unwrap();
        let plan = spec.plan(500, 2, 4);
        let mut script = String::from("# chaos scenario\n\n");
        script.push_str(&plan.to_script());
        let parsed = FaultPlan::from_script(&script).unwrap();
        assert_eq!(parsed, plan);
        assert!(FaultPlan::from_script("not json\n").is_err());
    }

    #[test]
    fn push_keeps_same_time_events_in_insertion_order() {
        let mut plan = FaultPlan::new();
        let first = FaultEvent {
            at_ms: 5,
            kind: FaultKind::ShardStall { shard: 0, ms: 1 },
        };
        let second = FaultEvent {
            at_ms: 5,
            kind: FaultKind::ShardStall { shard: 1, ms: 1 },
        };
        plan.push(FaultEvent {
            at_ms: 9,
            kind: FaultKind::CacheCorruption { shard: 0, core: 0 },
        });
        plan.push(first);
        plan.push(second);
        assert_eq!(plan.events()[0], first);
        assert_eq!(plan.events()[1], second);
        assert_eq!(plan.events()[2].at_ms, 9);
    }
}
