//! Scheduler-function cost measurement: the paper's `release()`, `sch()` and
//! `cnt_swth()` numbers (3 µs, 5 µs, 1.5 µs on the paper's platform).
//!
//! In the Linux implementation these are kernel functions; in this
//! reproduction their counterparts are the corresponding paths of the
//! simulator's scheduler, which boil down to well-defined sequences of queue
//! operations plus bookkeeping:
//!
//! * `release()` — pop the task from the sleep queue and insert the job into
//!   the ready queue,
//! * `sch()` — inspect the head of the ready queue and compare priorities
//!   (plus re-inserting the preempted job on a preemption),
//! * `cnt_swth()` — swap the running-job bookkeeping and remove the
//!   dispatched job from the ready queue.
//!
//! The measured values land in the same order of magnitude (single-digit
//! microseconds or below) which is all the downstream analysis relies on.

use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use spms_analysis::OverheadModel;
use spms_queues::{ReadyQueue, SleepQueue};
use spms_task::Time;

use crate::{DurationStats, MeasurementConfig};

/// Measured costs of the three scheduler functions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionCostReport {
    /// The `release()` path.
    pub release: DurationStats,
    /// The `sch()` path.
    pub schedule: DurationStats,
    /// The `cnt_swth()` path.
    pub context_switch: DurationStats,
}

impl FunctionCostReport {
    /// Renders a small markdown table comparing against the paper's values.
    pub fn render_markdown(&self) -> String {
        format!(
            "| Function | measured mean | measured max | paper |\n\
             |---|---|---|---|\n\
             | release() | {:.2} us | {:.2} us | 3 us |\n\
             | sch() | {:.2} us | {:.2} us | 5 us |\n\
             | cnt_swth() | {:.2} us | {:.2} us | 1.5 us |\n",
            self.release.mean_us(),
            self.release.max_us(),
            self.schedule.mean_us(),
            self.schedule.max_us(),
            self.context_switch.mean_us(),
            self.context_switch.max_us(),
        )
    }

    /// Overrides the function costs of an [`OverheadModel`] with the
    /// measured means.
    pub fn apply_to(&self, mut model: OverheadModel) -> OverheadModel {
        model.release = Time::from_nanos(self.release.mean_ns.round() as u64);
        model.schedule = Time::from_nanos(self.schedule.mean_ns.round() as u64);
        model.context_switch = Time::from_nanos(self.context_switch.mean_ns.round() as u64);
        model
    }
}

/// Measurement harness for the scheduler-function costs.
#[derive(Debug, Clone, Default)]
pub struct FunctionCosts {
    config: MeasurementConfig,
}

impl FunctionCosts {
    /// Creates a harness with the given configuration.
    pub fn new(config: MeasurementConfig) -> Self {
        FunctionCosts { config }
    }

    /// Measures all three functions with `tasks_per_core` resident tasks.
    pub fn measure(&self, tasks_per_core: usize) -> FunctionCostReport {
        FunctionCostReport {
            release: DurationStats::from_samples(&self.measure_release(tasks_per_core)),
            schedule: DurationStats::from_samples(&self.measure_schedule(tasks_per_core)),
            context_switch: DurationStats::from_samples(
                &self.measure_context_switch(tasks_per_core),
            ),
        }
    }

    fn total(&self) -> usize {
        self.config.iterations + self.config.warmup
    }

    fn keep(&self, samples: Vec<Duration>) -> Vec<Duration> {
        samples.into_iter().skip(self.config.warmup).collect()
    }

    fn measure_release(&self, n: usize) -> Vec<Duration> {
        let mut sleep: SleepQueue<(u64, u64), u64> = SleepQueue::new();
        let mut ready: ReadyQueue<u32, u64> = ReadyQueue::new();
        for i in 0..n {
            sleep.add((i as u64, i as u64), i as u64);
            ready.add((i % 8) as u32, i as u64);
        }
        let mut samples = Vec::with_capacity(self.total());
        for i in 0..self.total() {
            let start = Instant::now();
            // release(): take the next task off the sleep queue and make its
            // job ready.
            if let Some(((t, id), task)) = sleep.pop_earliest() {
                ready.add((task % 8) as u32, task);
                samples.push(start.elapsed());
                // Restore state outside the measured region.
                ready.delete_highest();
                sleep.add((t + 1, id), task);
            } else {
                sleep.add((i as u64, i as u64), i as u64);
            }
        }
        self.keep(samples)
    }

    fn measure_schedule(&self, n: usize) -> Vec<Duration> {
        let mut ready: ReadyQueue<u32, u64> = ReadyQueue::new();
        for i in 0..n {
            ready.add((i % 8) as u32, i as u64);
        }
        let running_priority = 5u32;
        let mut decisions = 0u64;
        let mut samples = Vec::with_capacity(self.total());
        for _ in 0..self.total() {
            let start = Instant::now();
            // sch(): pick the highest-priority ready job and decide whether
            // it preempts the running one.
            if let Some((priority, _job)) = ready.peek() {
                if *priority < running_priority {
                    decisions += 1;
                }
            }
            samples.push(start.elapsed());
        }
        // Keep the decision count alive so the loop is not optimised away.
        assert!(decisions <= self.total() as u64);
        self.keep(samples)
    }

    fn measure_context_switch(&self, n: usize) -> Vec<Duration> {
        let mut ready: ReadyQueue<u32, u64> = ReadyQueue::new();
        for i in 0..n {
            ready.add((i % 8) as u32, i as u64);
        }
        let mut running: Option<(u32, u64)> = None;
        let mut samples = Vec::with_capacity(self.total());
        for _ in 0..self.total() {
            let start = Instant::now();
            // cnt_swth(): store the outgoing context and load the incoming
            // one (modelled by swapping the running slot with the ready head).
            let next = ready.delete_highest();
            if let Some(prev) = running.take() {
                ready.add(prev.0, prev.1);
            }
            running = next;
            samples.push(start.elapsed());
        }
        self.keep(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FunctionCosts {
        FunctionCosts::new(MeasurementConfig {
            iterations: 300,
            warmup: 50,
        })
    }

    #[test]
    fn all_three_functions_are_measured() {
        let report = quick().measure(16);
        assert!(report.release.samples > 0);
        assert!(report.schedule.samples > 0);
        assert!(report.context_switch.samples > 0);
        // All of these are cheap operations: well under a millisecond.
        assert!(report.release.mean_ns < 1_000_000.0);
        assert!(report.schedule.mean_ns < 1_000_000.0);
        assert!(report.context_switch.mean_ns < 1_000_000.0);
    }

    #[test]
    fn markdown_mentions_the_paper_values() {
        let md = quick().measure(8).render_markdown();
        assert!(md.contains("release()"));
        assert!(md.contains("cnt_swth()"));
        assert!(md.contains("1.5 us"));
    }

    #[test]
    fn apply_to_overrides_function_costs_only() {
        let report = quick().measure(8);
        let model = report.apply_to(OverheadModel::paper_n4());
        assert_eq!(
            model.ready_queue_add_local,
            OverheadModel::paper_n4().ready_queue_add_local
        );
        assert_eq!(
            model.release,
            Time::from_nanos(report.release.mean_ns.round() as u64)
        );
    }
}
