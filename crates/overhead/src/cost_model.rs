//! Pluggable admission cost models: what one migration costs a task.
//!
//! The online admission cascade (`spms-online`) decides whether a split,
//! repair relocation or rebalance move keeps the partition schedulable. The
//! paper's §3 measurements say such moves are *not* free: every core
//! boundary a task crosses costs a cache reload (the CRPD model in
//! `spms-cache`) plus fixed scheduler-function work (the `sch()` /
//! `cnt_swth()` costs this crate measures). A [`CostModel`] turns those
//! measurements into a per-task **WCET inflation charge**: the extra
//! execution budget the admission test must prove schedulable before the
//! move is allowed.
//!
//! Two implementations ship:
//!
//! * [`ZeroCost`] — migrations are free; decisions are byte-identical to the
//!   pre-cost-model controller (pinned by proptests in `spms-online`).
//! * [`CrpdCostModel`] — charges the analytic cache-reload cost of the
//!   task's working set on the configured hierarchy, plus fixed
//!   context-switch and scheduler costs. Tasks carry no footprint field, so
//!   a deterministic [`WorkingSetAttribution`] derives one from the task id.
//!
//! [`CostModelSpec`] is the serializable selector `OnlineConfig` stores.

use serde::{Deserialize, Serialize};
use spms_cache::{CacheHierarchyConfig, CrpdModel, WorkingSet};
use spms_task::{Task, Time};

use crate::FunctionCostReport;

/// Per-migration WCET inflation charged by the online admission cascade.
///
/// Implementations must be **pure**: the charge may depend only on the task
/// and the model's own configuration, never on mutable state — the cascade
/// recomputes charges from the pristine admitted task on every relocation,
/// so a task is charged exactly once per move and charges never compound.
pub trait CostModel {
    /// Extra WCET `task` must absorb each time its placement crosses a core
    /// boundary (a split-chain hop, a repair relocation, a rebalance move).
    fn migration_charge(&self, task: &Task) -> Time;
}

/// The free model: every migration costs nothing.
///
/// This is the default and reproduces the pre-cost-model admission
/// behaviour bit for bit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZeroCost;

impl CostModel for ZeroCost {
    fn migration_charge(&self, _task: &Task) -> Time {
        Time::ZERO
    }
}

/// Deterministic attribution of working sets to tasks.
///
/// The sporadic task model has no memory-footprint parameter, so the cost
/// model derives one purely from the task id — stable across runs, thread
/// counts and relocations of the same task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkingSetAttribution {
    /// Every task uses the same working-set size.
    Uniform {
        /// Working-set size in bytes.
        bytes: u64,
    },
    /// Per-task size interpolated between the bounds by an FNV-1a hash of
    /// the task id — a mixed population with a stable size per task.
    HashSpread {
        /// Smallest working set in the population, in bytes.
        min_bytes: u64,
        /// Largest working set in the population, in bytes.
        max_bytes: u64,
    },
}

impl WorkingSetAttribution {
    /// The working set attributed to `task`.
    pub fn working_set(&self, task: &Task) -> WorkingSet {
        match *self {
            WorkingSetAttribution::Uniform { bytes } => WorkingSet::from_bytes(bytes),
            WorkingSetAttribution::HashSpread {
                min_bytes,
                max_bytes,
            } => {
                let lo = min_bytes.min(max_bytes);
                let hi = min_bytes.max(max_bytes);
                // Integer interpolation over a 1024-bucket hash of the id:
                // deterministic, no floating point involved.
                let bucket = fnv1a(&task.id().0.to_le_bytes()) % 1024;
                WorkingSet::from_bytes(lo + (hi - lo) * bucket / 1023)
            }
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    bytes.iter().fold(FNV_OFFSET, |acc, b| {
        (acc ^ u64::from(*b)).wrapping_mul(FNV_PRIME)
    })
}

/// CRPD-based migration charge: analytic cache-reload cost of the task's
/// working set plus fixed scheduler-function costs.
///
/// The reload half comes from [`CrpdModel::analytic`] on the configured
/// hierarchy — the lines that survive in the shared L3 reload at L3 hit
/// latency, the rest from memory. The fixed half defaults to the paper's
/// `sch()` (5 µs) and `cnt_swth()` (1.5 µs) platform measurements and can be
/// replaced by values measured on *this* machine via
/// [`with_function_costs`](Self::with_function_costs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrpdCostModel {
    /// Cache hierarchy the reload cost is computed against.
    pub hierarchy: CacheHierarchyConfig,
    /// How tasks map to working-set sizes.
    pub attribution: WorkingSetAttribution,
    /// Fixed per-migration scheduler invocation cost (the paper's `sch()`).
    pub schedule: Time,
    /// Fixed per-migration context-switch cost (the paper's `cnt_swth()`).
    pub context_switch: Time,
}

impl CrpdCostModel {
    /// A model over `hierarchy` with the given attribution and the paper's
    /// fixed function costs (`sch()` 5 µs, `cnt_swth()` 1.5 µs).
    pub fn new(hierarchy: CacheHierarchyConfig, attribution: WorkingSetAttribution) -> Self {
        CrpdCostModel {
            hierarchy,
            attribution,
            schedule: Time::from_micros(5),
            context_switch: Time::from_micros_f64(1.5),
        }
    }

    /// A working-set-**light** population on the paper's Core-i7 hierarchy:
    /// 8 KiB per task, well inside the private caches — migrations cost a
    /// few microseconds.
    pub fn light() -> Self {
        CrpdCostModel::new(
            CacheHierarchyConfig::core_i7_4core(),
            WorkingSetAttribution::Uniform { bytes: 8 * 1024 },
        )
    }

    /// A working-set-**heavy** population on the paper's Core-i7 hierarchy:
    /// 2 MiB per task, far beyond the private caches — migrations cost
    /// hundreds of microseconds.
    pub fn heavy() -> Self {
        CrpdCostModel::new(
            CacheHierarchyConfig::core_i7_4core(),
            WorkingSetAttribution::Uniform {
                bytes: 2 * 1024 * 1024,
            },
        )
    }

    /// A mixed population on the paper's Core-i7 hierarchy: per-task sizes
    /// hash-spread between 8 KiB and 2 MiB.
    pub fn mixed() -> Self {
        CrpdCostModel::new(
            CacheHierarchyConfig::core_i7_4core(),
            WorkingSetAttribution::HashSpread {
                min_bytes: 8 * 1024,
                max_bytes: 2 * 1024 * 1024,
            },
        )
    }

    /// Replaces the fixed function costs with means measured on this
    /// machine by [`FunctionCosts`](crate::FunctionCosts).
    pub fn with_function_costs(mut self, report: &FunctionCostReport) -> Self {
        self.schedule = Time::from_nanos(report.schedule.mean_ns.round() as u64);
        self.context_switch = Time::from_nanos(report.context_switch.mean_ns.round() as u64);
        self
    }

    /// The working set attributed to `task`.
    pub fn working_set(&self, task: &Task) -> WorkingSet {
        self.attribution.working_set(task)
    }

    /// The analytic cache-reload cost of migrating `task` once.
    pub fn reload_charge(&self, task: &Task) -> Time {
        let ws = self.working_set(task);
        let estimate = CrpdModel::new(self.hierarchy.clone()).analytic(ws, ws);
        Time::from_nanos(estimate.migration_ns)
    }
}

impl CostModel for CrpdCostModel {
    fn migration_charge(&self, task: &Task) -> Time {
        self.reload_charge(task) + self.schedule + self.context_switch
    }
}

/// Serializable cost-model selector, the form `OnlineConfig` stores.
///
/// Keeping this an enum (rather than a boxed trait object) preserves the
/// config's `Clone`/`PartialEq`/serde derives and keeps decision replay
/// deterministic from a serialized config alone.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub enum CostModelSpec {
    /// Migrations are free (the default).
    #[default]
    Zero,
    /// CRPD-based WCET inflation.
    Crpd(CrpdCostModel),
}

impl CostModelSpec {
    /// Whether this is the free model (charges are always zero).
    pub fn is_zero(&self) -> bool {
        matches!(self, CostModelSpec::Zero)
    }

    /// A short stable label for report columns (`"zero"` / `"crpd"`).
    pub fn label(&self) -> &'static str {
        match self {
            CostModelSpec::Zero => "zero",
            CostModelSpec::Crpd(_) => "crpd",
        }
    }
}

impl CostModel for CostModelSpec {
    fn migration_charge(&self, task: &Task) -> Time {
        match self {
            CostModelSpec::Zero => Time::ZERO,
            CostModelSpec::Crpd(model) => model.migration_charge(task),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u32) -> Task {
        Task::new(id, Time::from_millis(2), Time::from_millis(50)).unwrap()
    }

    #[test]
    fn zero_cost_charges_nothing() {
        assert_eq!(ZeroCost.migration_charge(&task(7)), Time::ZERO);
        assert_eq!(CostModelSpec::Zero.migration_charge(&task(7)), Time::ZERO);
        assert!(CostModelSpec::default().is_zero());
    }

    #[test]
    fn heavy_working_sets_cost_orders_of_magnitude_more() {
        let light = CrpdCostModel::light().migration_charge(&task(1));
        let heavy = CrpdCostModel::heavy().migration_charge(&task(1));
        assert!(light > Time::ZERO);
        // 2 MiB of reload dwarfs 8 KiB plus the fixed costs.
        assert!(heavy.as_nanos() > 10 * light.as_nanos());
        // Both models still charge the fixed scheduler work.
        let fixed = CrpdCostModel::light().schedule + CrpdCostModel::light().context_switch;
        assert!(light >= fixed);
    }

    #[test]
    fn hash_spread_is_deterministic_and_bounded() {
        let model = CrpdCostModel::mixed();
        for id in 0..64 {
            let a = model.working_set(&task(id)).bytes();
            let b = model.working_set(&task(id)).bytes();
            assert_eq!(a, b, "attribution must be stable per task");
            assert!((8 * 1024..=2 * 1024 * 1024).contains(&a));
        }
        // The spread actually spreads.
        let sizes: std::collections::BTreeSet<u64> = (0..64)
            .map(|id| model.working_set(&task(id)).bytes())
            .collect();
        assert!(
            sizes.len() > 8,
            "expected a spread, got {} sizes",
            sizes.len()
        );
    }

    #[test]
    fn measured_function_costs_replace_the_paper_values() {
        let report = FunctionCostReport {
            release: crate::DurationStats::from_samples(&[std::time::Duration::from_nanos(100)]),
            schedule: crate::DurationStats::from_samples(&[std::time::Duration::from_nanos(200)]),
            context_switch: crate::DurationStats::from_samples(&[std::time::Duration::from_nanos(
                300,
            )]),
        };
        let model = CrpdCostModel::light().with_function_costs(&report);
        assert_eq!(model.schedule, Time::from_nanos(200));
        assert_eq!(model.context_switch, Time::from_nanos(300));
    }

    #[test]
    fn spec_round_trips_through_serde() {
        for spec in [
            CostModelSpec::Zero,
            CostModelSpec::Crpd(CrpdCostModel::mixed()),
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: CostModelSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
        assert_eq!(CostModelSpec::Zero.label(), "zero");
        assert_eq!(CostModelSpec::Crpd(CrpdCostModel::light()).label(), "crpd");
    }
}
