//! Queue-operation measurements: the paper's Table 1.
//!
//! | Operation            | local (N=4) | remote (N=4) | local (N=64) | remote (N=64) |
//! |----------------------|-------------|--------------|--------------|---------------|
//! | sleep queue – add    | 2.5 µs      | 2.9 µs       | 4.3 µs       | 4.4 µs        |
//! | sleep queue – delete | 3.3 µs      | N/A          | 5.8 µs       | N/A           |
//! | ready queue – add    | 1.5 µs      | 3.3 µs       | 4.4 µs       | 4.6 µs        |
//! | ready queue – delete | 2.7 µs      | N/A          | 4.6 µs       | N/A           |
//!
//! This module measures the same operations against the Rust binomial heap
//! and red-black tree from `spms-queues`. "Local" operations run on the
//! calling thread with uncontended queues; "remote" operations acquire a
//! lock that a second thread is actively contending (the paper's remote
//! insertions happen from another core and pay cross-core synchronisation).
//! Deletions are always local, as in the paper (a core only pops its own
//! queues).

use std::time::{Duration, Instant};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use spms_analysis::OverheadModel;
use spms_queues::{ReadyQueue, SleepQueue};
use spms_task::Time;

use crate::DurationStats;

/// Which queue operation is being measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueOp {
    /// Insert into the sleep queue (red-black tree).
    SleepQueueAdd,
    /// Remove the earliest entry from the sleep queue.
    SleepQueueDelete,
    /// Insert into the ready queue (binomial heap).
    ReadyQueueAdd,
    /// Remove the highest-priority entry from the ready queue.
    ReadyQueueDelete,
}

impl QueueOp {
    /// Label matching the paper's Table 1 row names.
    pub fn label(&self) -> &'static str {
        match self {
            QueueOp::SleepQueueAdd => "sleep queue - add",
            QueueOp::SleepQueueDelete => "sleep queue - delete",
            QueueOp::ReadyQueueAdd => "ready queue - add",
            QueueOp::ReadyQueueDelete => "ready queue - delete",
        }
    }
}

/// Whether the operation was performed locally or against a contended,
/// remotely shared queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Uncontended access from the owning core's thread.
    Local,
    /// Access to a queue that another thread is concurrently using.
    Remote,
}

/// One measured cell of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueOpMeasurement {
    /// The operation measured.
    pub operation: QueueOp,
    /// Number of elements resident in the queue during the measurement (the
    /// paper's `N`).
    pub queue_size: usize,
    /// Local or remote access.
    pub locality: Locality,
    /// Summary statistics of the measured durations.
    pub stats: DurationStats,
}

/// Measurement parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasurementConfig {
    /// Number of measured iterations per cell.
    pub iterations: usize,
    /// Warm-up iterations discarded before measuring.
    pub warmup: usize,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            iterations: 5_000,
            warmup: 500,
        }
    }
}

/// The regenerated Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Table1 {
    rows: Vec<QueueOpMeasurement>,
}

impl Table1 {
    /// All measured cells.
    pub fn rows(&self) -> &[QueueOpMeasurement] {
        &self.rows
    }

    /// Looks up one cell.
    pub fn get(
        &self,
        operation: QueueOp,
        queue_size: usize,
        locality: Locality,
    ) -> Option<&QueueOpMeasurement> {
        self.rows.iter().find(|r| {
            r.operation == operation && r.queue_size == queue_size && r.locality == locality
        })
    }

    /// Renders the table in the same shape as the paper's Table 1
    /// (mean values in microseconds, `N/A` for remote deletions).
    pub fn render_markdown(&self) -> String {
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = self.rows.iter().map(|r| r.queue_size).collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        let mut out = String::from("| Operation |");
        for n in &sizes {
            out.push_str(&format!(" local (N = {n}) | remote (N = {n}) |"));
        }
        out.push('\n');
        out.push_str("|---|");
        for _ in &sizes {
            out.push_str("---|---|");
        }
        out.push('\n');
        for op in [
            QueueOp::SleepQueueAdd,
            QueueOp::SleepQueueDelete,
            QueueOp::ReadyQueueAdd,
            QueueOp::ReadyQueueDelete,
        ] {
            out.push_str(&format!("| {} |", op.label()));
            for &n in &sizes {
                match self.get(op, n, Locality::Local) {
                    Some(cell) => out.push_str(&format!(" {:.2} us |", cell.stats.mean_us())),
                    None => out.push_str(" N/A |"),
                }
                match self.get(op, n, Locality::Remote) {
                    Some(cell) => out.push_str(&format!(" {:.2} us |", cell.stats.mean_us())),
                    None => out.push_str(" N/A |"),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Builds an [`OverheadModel`] whose queue-operation entries come from
    /// these measurements (taking the mean of each cell), keeping the
    /// paper's function costs and the supplied cache-reload delays.
    pub fn to_overhead_model(&self, cache_local: Time, cache_migration: Time) -> OverheadModel {
        let mean = |op, n, locality| -> Time {
            self.get(op, n, locality)
                .map(|c| Time::from_nanos(c.stats.mean_ns.round() as u64))
                .unwrap_or(Time::ZERO)
        };
        // Use the larger queue size available as the conservative setting.
        let n = self.rows.iter().map(|r| r.queue_size).max().unwrap_or(4);
        OverheadModel {
            ready_queue_add_local: mean(QueueOp::ReadyQueueAdd, n, Locality::Local),
            ready_queue_add_remote: mean(QueueOp::ReadyQueueAdd, n, Locality::Remote),
            ready_queue_delete: mean(QueueOp::ReadyQueueDelete, n, Locality::Local),
            sleep_queue_add_local: mean(QueueOp::SleepQueueAdd, n, Locality::Local),
            sleep_queue_add_remote: mean(QueueOp::SleepQueueAdd, n, Locality::Remote),
            sleep_queue_delete: mean(QueueOp::SleepQueueDelete, n, Locality::Local),
            cache_reload_local: cache_local,
            cache_reload_migration: cache_migration,
            ..OverheadModel::paper_n4()
        }
    }
}

/// The measurement harness for queue operations.
#[derive(Debug, Clone, Default)]
pub struct QueueOpBenchmark {
    config: MeasurementConfig,
}

impl QueueOpBenchmark {
    /// Creates a harness with the given configuration.
    pub fn new(config: MeasurementConfig) -> Self {
        QueueOpBenchmark { config }
    }

    /// Measures every cell of Table 1 for the paper's queue sizes
    /// (N = 4 and N = 64).
    pub fn measure_table1(&self) -> Table1 {
        self.measure_for_sizes(&[4, 64])
    }

    /// Measures every cell for the given queue sizes.
    pub fn measure_for_sizes(&self, sizes: &[usize]) -> Table1 {
        let mut rows = Vec::new();
        for &n in sizes {
            rows.push(self.measure(QueueOp::SleepQueueAdd, n, Locality::Local));
            rows.push(self.measure(QueueOp::SleepQueueAdd, n, Locality::Remote));
            rows.push(self.measure(QueueOp::SleepQueueDelete, n, Locality::Local));
            rows.push(self.measure(QueueOp::ReadyQueueAdd, n, Locality::Local));
            rows.push(self.measure(QueueOp::ReadyQueueAdd, n, Locality::Remote));
            rows.push(self.measure(QueueOp::ReadyQueueDelete, n, Locality::Local));
        }
        Table1 { rows }
    }

    /// Measures one cell.
    pub fn measure(
        &self,
        operation: QueueOp,
        queue_size: usize,
        locality: Locality,
    ) -> QueueOpMeasurement {
        let samples = match (operation, locality) {
            (QueueOp::ReadyQueueAdd, Locality::Local) => self.ready_add_local(queue_size),
            (QueueOp::ReadyQueueAdd, Locality::Remote) => self.ready_add_remote(queue_size),
            (QueueOp::ReadyQueueDelete, _) => self.ready_delete(queue_size),
            (QueueOp::SleepQueueAdd, Locality::Local) => self.sleep_add_local(queue_size),
            (QueueOp::SleepQueueAdd, Locality::Remote) => self.sleep_add_remote(queue_size),
            (QueueOp::SleepQueueDelete, _) => self.sleep_delete(queue_size),
        };
        QueueOpMeasurement {
            operation,
            queue_size,
            locality,
            stats: DurationStats::from_samples(&samples),
        }
    }

    fn total_iterations(&self) -> usize {
        self.config.iterations + self.config.warmup
    }

    fn keep_measured(&self, samples: Vec<Duration>) -> Vec<Duration> {
        samples.into_iter().skip(self.config.warmup).collect()
    }

    fn ready_add_local(&self, n: usize) -> Vec<Duration> {
        let mut queue: ReadyQueue<u32, u64> = ReadyQueue::new();
        for i in 0..n {
            queue.add((i % 16) as u32, i as u64);
        }
        let mut samples = Vec::with_capacity(self.total_iterations());
        for i in 0..self.total_iterations() {
            let start = Instant::now();
            queue.add((i % 16) as u32, i as u64);
            samples.push(start.elapsed());
            queue.delete_highest();
        }
        self.keep_measured(samples)
    }

    fn ready_delete(&self, n: usize) -> Vec<Duration> {
        let mut queue: ReadyQueue<u32, u64> = ReadyQueue::new();
        for i in 0..n {
            queue.add((i % 16) as u32, i as u64);
        }
        let mut samples = Vec::with_capacity(self.total_iterations());
        for i in 0..self.total_iterations() {
            let start = Instant::now();
            let popped = queue.delete_highest();
            samples.push(start.elapsed());
            if let Some((p, t)) = popped {
                queue.add(p, t);
            } else {
                queue.add((i % 16) as u32, i as u64);
            }
        }
        self.keep_measured(samples)
    }

    fn ready_add_remote(&self, n: usize) -> Vec<Duration> {
        let queue: Mutex<ReadyQueue<u32, u64>> = Mutex::new(ReadyQueue::new());
        {
            let mut q = queue.lock();
            for i in 0..n {
                q.add((i % 16) as u32, i as u64);
            }
        }
        self.contended(&queue, |q, i| {
            q.add((i % 16) as u32, i as u64);
        })
    }

    fn sleep_add_local(&self, n: usize) -> Vec<Duration> {
        let mut queue: SleepQueue<(u64, u64), u64> = SleepQueue::new();
        for i in 0..n {
            queue.add((i as u64 * 1_000, i as u64), i as u64);
        }
        let mut samples = Vec::with_capacity(self.total_iterations());
        for i in 0..self.total_iterations() {
            let key = (((i % 997) * 13) as u64, (n + i) as u64);
            let start = Instant::now();
            queue.add(key, i as u64);
            samples.push(start.elapsed());
            queue.delete(&key);
        }
        self.keep_measured(samples)
    }

    fn sleep_delete(&self, n: usize) -> Vec<Duration> {
        let mut queue: SleepQueue<(u64, u64), u64> = SleepQueue::new();
        for i in 0..n {
            queue.add((i as u64 * 1_000, i as u64), i as u64);
        }
        let mut samples = Vec::with_capacity(self.total_iterations());
        for _ in 0..self.total_iterations() {
            let start = Instant::now();
            let popped = queue.pop_earliest();
            samples.push(start.elapsed());
            if let Some((k, v)) = popped {
                queue.add(k, v);
            }
        }
        self.keep_measured(samples)
    }

    fn sleep_add_remote(&self, n: usize) -> Vec<Duration> {
        let queue: Mutex<SleepQueue<(u64, u64), u64>> = Mutex::new(SleepQueue::new());
        {
            let mut q = queue.lock();
            for i in 0..n {
                q.add((i as u64 * 1_000, i as u64), i as u64);
            }
        }
        self.contended(&queue, |q, i| {
            let key = (((i % 997) * 13 + 1) as u64, (1_000_000 + i) as u64);
            q.add(key, i as u64);
            q.delete(&key);
        })
    }

    /// Runs `op` on the measuring thread while a second thread hammers the
    /// same lock, emulating a remote core touching another core's queue.
    fn contended<Q: Send, F>(&self, queue: &Mutex<Q>, op: F) -> Vec<Duration>
    where
        F: Fn(&mut Q, usize) + Sync,
    {
        use std::sync::atomic::{AtomicBool, Ordering};
        let stop = AtomicBool::new(false);
        let total = self.total_iterations();
        let mut samples = Vec::with_capacity(total);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    {
                        let mut guard = queue.lock();
                        op(&mut guard, i);
                    }
                    i = i.wrapping_add(1);
                    std::hint::spin_loop();
                }
            });
            for i in 0..total {
                let start = Instant::now();
                {
                    let mut guard = queue.lock();
                    op(&mut guard, i);
                }
                samples.push(start.elapsed());
            }
            stop.store(true, Ordering::Relaxed);
        });
        self.keep_measured(samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> MeasurementConfig {
        MeasurementConfig {
            iterations: 300,
            warmup: 50,
        }
    }

    #[test]
    fn table_has_all_cells_for_paper_sizes() {
        let table = QueueOpBenchmark::new(quick_config()).measure_for_sizes(&[4]);
        assert_eq!(table.rows().len(), 6);
        assert!(table
            .get(QueueOp::ReadyQueueAdd, 4, Locality::Local)
            .is_some());
        assert!(table
            .get(QueueOp::ReadyQueueAdd, 4, Locality::Remote)
            .is_some());
        assert!(table
            .get(QueueOp::SleepQueueDelete, 4, Locality::Local)
            .is_some());
        assert!(table
            .get(QueueOp::SleepQueueDelete, 4, Locality::Remote)
            .is_none());
    }

    #[test]
    fn measurements_are_positive_and_small() {
        let table = QueueOpBenchmark::new(quick_config()).measure_for_sizes(&[4, 64]);
        for row in table.rows() {
            assert!(row.stats.samples > 0);
            assert!(row.stats.max_ns > 0, "{row:?}");
            // Queue operations are sub-millisecond on any modern machine.
            assert!(row.stats.mean_ns < 1_000_000.0, "{row:?}");
        }
    }

    #[test]
    fn markdown_table_mentions_every_operation() {
        let table = QueueOpBenchmark::new(quick_config()).measure_for_sizes(&[4]);
        let md = table.render_markdown();
        for op in [
            QueueOp::SleepQueueAdd,
            QueueOp::SleepQueueDelete,
            QueueOp::ReadyQueueAdd,
            QueueOp::ReadyQueueDelete,
        ] {
            assert!(md.contains(op.label()), "{md}");
        }
        assert!(md.contains("N/A"), "remote deletions are not measured");
    }

    #[test]
    fn overhead_model_from_measurements() {
        let table = QueueOpBenchmark::new(quick_config()).measure_for_sizes(&[4]);
        let model = table.to_overhead_model(Time::from_micros(20), Time::from_micros(25));
        assert!(model.ready_queue_add_local > Time::ZERO);
        assert!(model.sleep_queue_delete > Time::ZERO);
        assert_eq!(model.cache_reload_local, Time::from_micros(20));
        // Function costs fall back to the paper's values.
        assert_eq!(model.release, Time::from_micros(3));
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(QueueOp::ReadyQueueAdd.label(), "ready queue - add");
        assert_eq!(QueueOp::SleepQueueDelete.label(), "sleep queue - delete");
    }
}
