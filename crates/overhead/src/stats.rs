//! Small helpers for summarising measured durations.

use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of measured durations, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct DurationStats {
    /// Number of samples.
    pub samples: usize,
    /// Smallest observed duration.
    pub min_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// 95th percentile.
    pub p95_ns: u64,
    /// Largest observed duration (the paper reports maxima).
    pub max_ns: u64,
}

impl DurationStats {
    /// Summarises a set of samples.
    ///
    /// Returns the zero value for an empty input.
    pub fn from_samples(samples: &[Duration]) -> Self {
        if samples.is_empty() {
            return DurationStats::default();
        }
        let mut ns: Vec<u64> = samples.iter().map(|d| d.as_nanos() as u64).collect();
        ns.sort_unstable();
        let sum: u128 = ns.iter().map(|&v| u128::from(v)).sum();
        let p95_idx = ((ns.len() as f64) * 0.95).ceil() as usize - 1;
        DurationStats {
            samples: ns.len(),
            min_ns: ns[0],
            mean_ns: sum as f64 / ns.len() as f64,
            p95_ns: ns[p95_idx.min(ns.len() - 1)],
            max_ns: *ns.last().expect("non-empty"),
        }
    }

    /// The mean expressed in microseconds (the unit the paper uses).
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1_000.0
    }

    /// The maximum expressed in microseconds.
    pub fn max_us(&self) -> f64 {
        self.max_ns as f64 / 1_000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_input_is_zero() {
        let s = DurationStats::from_samples(&[]);
        assert_eq!(s.samples, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn summary_of_known_samples() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_nanos).collect();
        let s = DurationStats::from_samples(&samples);
        assert_eq!(s.samples, 100);
        assert_eq!(s.min_ns, 1);
        assert_eq!(s.max_ns, 100);
        assert!((s.mean_ns - 50.5).abs() < 1e-9);
        assert_eq!(s.p95_ns, 95);
        assert!((s.mean_us() - 0.0505).abs() < 1e-9);
        assert!((s.max_us() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let s = DurationStats::from_samples(&[Duration::from_nanos(42)]);
        assert_eq!(s.min_ns, 42);
        assert_eq!(s.max_ns, 42);
        assert_eq!(s.p95_ns, 42);
    }
}
