//! # spms-overhead
//!
//! The overhead measurement harness: regenerates the paper's Table 1 (queue
//! operation durations for N = 4 and N = 64 tasks, local and remote access)
//! and the scheduler-function costs of §3 against the *actual Rust
//! implementations* used by the simulator — the binomial-heap ready queue and
//! the red-black-tree sleep queue from `spms-queues`.
//!
//! The measured values can then be folded into an
//! [`OverheadModel`](spms_analysis::OverheadModel) so that the acceptance
//! ratio experiments run against overheads measured on *this* machine rather
//! than the paper's hard-coded numbers.
//!
//! # Example
//!
//! ```
//! use spms_overhead::{MeasurementConfig, QueueOpBenchmark};
//!
//! // Keep the iteration count small for the doctest; the defaults are larger.
//! let config = MeasurementConfig { iterations: 200, warmup: 50 };
//! let table = QueueOpBenchmark::new(config).measure_table1();
//! assert_eq!(table.rows().len(), 12); // 6 measured cells × 2 queue sizes
//! println!("{}", table.render_markdown());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost_model;
mod function_costs;
mod queue_ops;
mod stats;

pub use cost_model::{CostModel, CostModelSpec, CrpdCostModel, WorkingSetAttribution, ZeroCost};
pub use function_costs::{FunctionCostReport, FunctionCosts};
pub use queue_ops::{
    Locality, MeasurementConfig, QueueOp, QueueOpBenchmark, QueueOpMeasurement, Table1,
};
pub use stats::DurationStats;
