//! Seeded task-churn generation: a Poisson stream of arrivals with
//! log-uniform lifetimes, sized so the offered load hovers around a target
//! utilization.
//!
//! The offline experiments draw one task set per grid cell; the online
//! experiments instead need a *timeline* of [`WorkloadEvent`]s. The
//! generator models the standard open-system churn process:
//!
//! * arrivals form a Poisson process (exponential inter-arrival times with
//!   a configurable mean),
//! * each task lives for a log-uniformly distributed lifetime, then
//!   departs,
//! * per-task utilizations are drawn around `target / E[population]`, where
//!   the expected population follows Little's law
//!   (`E[lifetime] / E[inter-arrival]`), so the *offered* load oscillates
//!   around the target while individual arrivals stay diverse,
//! * periods are log-uniform (10 ms – 1 s by default), WCETs derived as
//!   `C = u · T`, exactly like the offline [`TaskSetGenerator`].
//!
//! Everything is driven by one seeded ChaCha8 stream: equal configurations
//! and seeds produce identical traces.
//!
//! [`TaskSetGenerator`]: spms_task::TaskSetGenerator

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use spms_task::{Task, TaskError, TaskId, Time};

use crate::{TimedEvent, WorkloadEvent};

/// Seedable generator of churn traces. See the [module docs](self) for the
/// stochastic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnGenerator {
    cores: usize,
    target_normalized_utilization: f64,
    events: usize,
    mean_interarrival: Time,
    lifetime_min: Time,
    lifetime_max: Time,
    period_min: Time,
    period_max: Time,
    utilization_spread: f64,
    max_task_utilization: f64,
    seed: u64,
}

impl Default for ChurnGenerator {
    fn default() -> Self {
        ChurnGenerator {
            cores: 4,
            target_normalized_utilization: 0.7,
            events: 100,
            mean_interarrival: Time::from_millis(40),
            lifetime_min: Time::from_millis(100),
            lifetime_max: Time::from_secs(4),
            period_min: Time::from_millis(10),
            period_max: Time::from_secs(1),
            utilization_spread: 0.5,
            max_task_utilization: 1.0,
            seed: 0,
        }
    }
}

impl ChurnGenerator {
    /// A generator with the default churn model: 4 cores, target normalized
    /// utilization 0.7, 100 events, 40 ms mean inter-arrival, lifetimes
    /// log-uniform in 100 ms – 4 s.
    pub fn new() -> Self {
        ChurnGenerator::default()
    }

    /// Sets the platform size the target utilization is normalized against.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the target *normalized* utilization (offered load divided by
    /// core count) the population hovers around.
    pub fn target_normalized_utilization(mut self, u: f64) -> Self {
        self.target_normalized_utilization = u;
        self
    }

    /// Sets how many events (arrivals plus departures) the trace contains.
    pub fn events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// Sets the mean inter-arrival time of the Poisson arrival process.
    pub fn mean_interarrival(mut self, mean: Time) -> Self {
        self.mean_interarrival = mean;
        self
    }

    /// Sets the log-uniform lifetime range.
    pub fn lifetime_range(mut self, min: Time, max: Time) -> Self {
        self.lifetime_min = min;
        self.lifetime_max = max;
        self
    }

    /// Sets the log-uniform period range of generated tasks.
    pub fn period_range(mut self, min: Time, max: Time) -> Self {
        self.period_min = min;
        self.period_max = max;
        self
    }

    /// Sets the relative spread of per-task utilizations around the base
    /// drawn from Little's law (0.0 = every task identical, 0.5 = ±50%).
    pub fn utilization_spread(mut self, spread: f64) -> Self {
        self.utilization_spread = spread;
        self
    }

    /// Caps every drawn per-task utilization (default 1.0). Lower caps
    /// generate heavy-task-free traces.
    pub fn max_task_utilization(mut self, cap: f64) -> Self {
        self.max_task_utilization = cap;
        self
    }

    /// Sets the RNG seed; equal configurations and seeds generate identical
    /// traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expected steady-state population by Little's law.
    fn expected_population(&self) -> f64 {
        let mean_lifetime = log_uniform_mean(self.lifetime_min, self.lifetime_max);
        (mean_lifetime / self.mean_interarrival.as_secs_f64().max(1e-9)).max(1.0)
    }

    /// Generates the event trace.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when the configuration
    /// is inconsistent (zero events, non-positive target, empty ranges, ...).
    pub fn generate(&self) -> Result<Vec<WorkloadEvent>, TaskError> {
        Ok(self
            .generate_timed()?
            .into_iter()
            .map(|timed| timed.event)
            .collect())
    }

    /// [`generate`](Self::generate) with each event stamped by its absolute
    /// occurrence time (arrivals at the Poisson clock, departures at the
    /// end of their task's lifetime), for feeding the
    /// [`EventLoop`](crate::EventLoop). The RNG draw order is identical to
    /// `generate`, so the untimed trace is exactly the timed one with the
    /// stamps stripped.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when the configuration
    /// is inconsistent (zero events, non-positive target, empty ranges, ...).
    pub fn generate_timed(&self) -> Result<Vec<TimedEvent>, TaskError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let base_utilization = (self.target_normalized_utilization * self.cores as f64
            / self.expected_population())
        .min(self.max_task_utilization);

        let mut events = Vec::with_capacity(self.events);
        // Departures pending, as (absolute time in seconds, task id), kept
        // sorted so the earliest departure is popped first.
        let mut departures: Vec<(f64, TaskId)> = Vec::new();
        let mut clock = 0.0f64;
        let mut next_id: u32 = 0;

        while events.len() < self.events {
            let interarrival = exponential(&mut rng, self.mean_interarrival.as_secs_f64());
            let arrival_time = clock + interarrival;
            // Emit every departure due before the next arrival.
            while events.len() < self.events {
                match departures.first() {
                    Some(&(when, id)) if when <= arrival_time => {
                        departures.remove(0);
                        events.push(TimedEvent {
                            at: Time::from_secs_f64(when),
                            event: WorkloadEvent::Depart(id),
                        });
                    }
                    _ => break,
                }
            }
            if events.len() >= self.events {
                break;
            }
            clock = arrival_time;
            let task = self.draw_task(&mut rng, next_id, base_utilization)?;
            let lifetime = log_uniform(&mut rng, self.lifetime_min, self.lifetime_max);
            let idx = departures
                .binary_search_by(|(when, _)| {
                    when.partial_cmp(&(clock + lifetime))
                        .unwrap_or(std::cmp::Ordering::Less)
                })
                .unwrap_or_else(|i| i);
            departures.insert(idx, (clock + lifetime, TaskId(next_id)));
            events.push(TimedEvent {
                at: Time::from_secs_f64(clock),
                event: WorkloadEvent::Arrive(task),
            });
            next_id += 1;
        }
        Ok(events)
    }

    fn draw_task(
        &self,
        rng: &mut ChaCha8Rng,
        id: u32,
        base_utilization: f64,
    ) -> Result<Task, TaskError> {
        let spread = self.utilization_spread.clamp(0.0, 0.95);
        let factor = if spread > 0.0 {
            rng.gen_range((1.0 - spread)..=(1.0 + spread))
        } else {
            1.0
        };
        let utilization = (base_utilization * factor).clamp(1e-4, self.max_task_utilization);
        let period = Time::from_secs_f64(log_uniform(rng, self.period_min, self.period_max));
        // Round to the same 100 µs granularity the offline generator uses so
        // hyperperiods stay manageable for simulation replay.
        let granularity = Time::from_micros(100);
        let period = Time::from_nanos(
            (period.as_nanos() / granularity.as_nanos()).max(1) * granularity.as_nanos(),
        );
        let wcet = period
            .scale(utilization)
            .max(Time::from_nanos(1))
            .min(period);
        Task::new(id, wcet, period)
    }

    fn validate(&self) -> Result<(), TaskError> {
        let invalid = |reason: String| TaskError::InvalidGeneratorConfig { reason };
        if self.events == 0 {
            return Err(invalid("churn trace needs at least one event".to_owned()));
        }
        if self.cores == 0 {
            return Err(invalid(
                "churn generation needs at least one core".to_owned(),
            ));
        }
        if self.target_normalized_utilization <= 0.0
            || !self.target_normalized_utilization.is_finite()
        {
            return Err(invalid(format!(
                "target normalized utilization must be positive and finite, got {}",
                self.target_normalized_utilization
            )));
        }
        if self.mean_interarrival.is_zero() {
            return Err(invalid(
                "mean inter-arrival time must be positive".to_owned(),
            ));
        }
        if !self.max_task_utilization.is_finite()
            || self.max_task_utilization <= 0.0
            || self.max_task_utilization > 1.0
        {
            return Err(invalid(format!(
                "per-task utilization cap must be in (0, 1], got {}",
                self.max_task_utilization
            )));
        }
        for (name, min, max) in [
            ("lifetime", self.lifetime_min, self.lifetime_max),
            ("period", self.period_min, self.period_max),
        ] {
            if min.is_zero() || max < min {
                return Err(invalid(format!("invalid {name} range [{min}, {max}]")));
            }
        }
        Ok(())
    }
}

/// An exponential sample with the given mean (inverse-CDF method).
fn exponential(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().clamp(0.0, 1.0 - 1e-12);
    -mean * (1.0 - u).ln()
}

/// A log-uniform sample in `[min, max]`, in seconds.
fn log_uniform(rng: &mut ChaCha8Rng, min: Time, max: Time) -> f64 {
    let lo = min.as_secs_f64().max(1e-9).ln();
    let hi = max.as_secs_f64().max(1e-9).ln();
    let v = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
    v.exp()
}

/// The mean of a log-uniform distribution over `[min, max]`, in seconds:
/// `(max − min) / ln(max / min)`.
fn log_uniform_mean(min: Time, max: Time) -> f64 {
    let a = min.as_secs_f64().max(1e-9);
    let b = max.as_secs_f64().max(a);
    if (b - a).abs() < 1e-12 {
        a
    } else {
        (b - a) / (b / a).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let gen = ChurnGenerator::new().events(50).seed(7);
        assert_eq!(gen.generate().unwrap(), gen.generate().unwrap());
        let other = ChurnGenerator::new().events(50).seed(8).generate().unwrap();
        assert_ne!(gen.generate().unwrap(), other);
    }

    #[test]
    fn timed_traces_strip_to_untimed_and_are_monotonic() {
        let gen = ChurnGenerator::new().events(120).seed(13);
        let timed = gen.generate_timed().unwrap();
        let untimed = gen.generate().unwrap();
        assert_eq!(timed.len(), untimed.len());
        assert!(timed.iter().zip(&untimed).all(|(t, u)| &t.event == u));
        assert!(
            timed.windows(2).all(|w| w[0].at <= w[1].at),
            "timestamps must be non-decreasing"
        );
    }

    #[test]
    fn traces_have_the_requested_length_and_consistent_ids() {
        let events = ChurnGenerator::new().events(80).seed(3).generate().unwrap();
        assert_eq!(events.len(), 80);
        let mut alive = std::collections::BTreeSet::new();
        for event in &events {
            match event {
                WorkloadEvent::Arrive(task) => {
                    assert!(alive.insert(task.id()), "duplicate arrival {}", task.id());
                    assert!(task.wcet() <= task.period());
                    assert!(task.utilization() <= 1.0 + 1e-9);
                }
                WorkloadEvent::Depart(id) => {
                    assert!(alive.remove(id), "departure of unknown task {id}");
                }
            }
        }
    }

    #[test]
    fn departures_follow_their_arrivals() {
        let events = ChurnGenerator::new()
            .events(120)
            .lifetime_range(Time::from_millis(20), Time::from_millis(200))
            .seed(11)
            .generate()
            .unwrap();
        assert!(
            events.iter().any(|e| !e.is_arrival()),
            "short lifetimes must produce departures"
        );
    }

    #[test]
    fn offered_load_tracks_the_target() {
        let gen = ChurnGenerator::new()
            .cores(4)
            .target_normalized_utilization(0.6)
            .events(400)
            .seed(5);
        let events = gen.generate().unwrap();
        // Track the running offered load and average it over events.
        let mut alive: std::collections::BTreeMap<TaskId, f64> = std::collections::BTreeMap::new();
        let mut samples = Vec::new();
        for event in &events {
            match event {
                WorkloadEvent::Arrive(task) => {
                    alive.insert(task.id(), task.utilization());
                }
                WorkloadEvent::Depart(id) => {
                    alive.remove(id);
                }
            }
            samples.push(alive.values().sum::<f64>());
        }
        // Skip the ramp-up; the steady-state average should be within ±50%
        // of the 2.4 target (the process is stochastic by design).
        let steady = &samples[samples.len() / 2..];
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        assert!(
            (1.2..=3.6).contains(&mean),
            "steady-state offered load {mean} far from target 2.4"
        );
    }

    #[test]
    fn utilization_cap_bounds_every_arrival() {
        let events = ChurnGenerator::new()
            .target_normalized_utilization(0.9)
            .utilization_spread(0.9)
            .max_task_utilization(0.25)
            .events(200)
            .seed(9)
            .generate()
            .unwrap();
        for event in &events {
            if let WorkloadEvent::Arrive(task) = event {
                assert!(task.utilization() <= 0.25 + 1e-9);
            }
        }
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(ChurnGenerator::new()
                .max_task_utilization(bad)
                .generate()
                .is_err());
        }
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(ChurnGenerator::new().events(0).generate().is_err());
        assert!(ChurnGenerator::new().cores(0).generate().is_err());
        assert!(ChurnGenerator::new()
            .target_normalized_utilization(0.0)
            .generate()
            .is_err());
        assert!(ChurnGenerator::new()
            .target_normalized_utilization(f64::NAN)
            .generate()
            .is_err());
        assert!(ChurnGenerator::new()
            .mean_interarrival(Time::ZERO)
            .generate()
            .is_err());
        assert!(ChurnGenerator::new()
            .lifetime_range(Time::from_millis(10), Time::from_millis(1))
            .generate()
            .is_err());
        assert!(ChurnGenerator::new()
            .period_range(Time::ZERO, Time::from_millis(1))
            .generate()
            .is_err());
    }
}
