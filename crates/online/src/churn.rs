//! Seeded task-churn generation: a Poisson stream of arrivals with
//! log-uniform lifetimes, sized so the offered load hovers around a target
//! utilization.
//!
//! The offline experiments draw one task set per grid cell; the online
//! experiments instead need a *timeline* of [`WorkloadEvent`]s. The
//! generator models the standard open-system churn process:
//!
//! * arrivals form a Poisson process (exponential inter-arrival times with
//!   a configurable mean) — or, under [`ChurnFamily::Bursty`], a
//!   Markov-modulated Poisson process whose hidden ON/OFF state
//!   compresses or stretches the inter-arrival mean (see
//!   [`ChurnFamily`]),
//! * each task lives for a log-uniformly distributed lifetime, then
//!   departs,
//! * per-task utilizations are drawn around `target / E[population]`, where
//!   the expected population follows Little's law
//!   (`E[lifetime] / E[inter-arrival]`), so the *offered* load oscillates
//!   around the target while individual arrivals stay diverse,
//! * periods are log-uniform (10 ms – 1 s by default), WCETs derived as
//!   `C = u · T`, exactly like the offline [`TaskSetGenerator`].
//!
//! Everything is driven by one seeded ChaCha8 stream: equal configurations
//! and seeds produce identical traces.
//!
//! [`TaskSetGenerator`]: spms_task::TaskSetGenerator

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use spms_task::{Task, TaskError, TaskId, Time};

use crate::{TimedEvent, WorkloadEvent};

/// The arrival-process family a [`ChurnGenerator`] draws from.
///
/// `Poisson` is the classic open-system model. `Bursty` layers a hidden
/// two-state Markov chain on top: before each arrival one uniform draw
/// decides the next ON/OFF state, and the exponential inter-arrival mean
/// is divided by the burst acceleration while ON and stretched while OFF
/// (the stretch is derived from the stationary ON share so the *long-run*
/// arrival rate matches the Poisson family's). The Poisson branch makes
/// no extra RNG draws, so `Poisson` traces are byte-identical to those of
/// generators predating this enum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnFamily {
    /// Memoryless Poisson arrivals (the default).
    #[default]
    Poisson,
    /// Markov-modulated Poisson arrivals: ON phases pack arrivals close
    /// together, OFF phases thin them out.
    Bursty,
}

impl std::str::FromStr for ChurnFamily {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "poisson" => Ok(ChurnFamily::Poisson),
            "bursty" => Ok(ChurnFamily::Bursty),
            other => Err(format!(
                "unknown churn family `{other}` (expected `poisson` or `bursty`)"
            )),
        }
    }
}

impl std::fmt::Display for ChurnFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ChurnFamily::Poisson => "poisson",
            ChurnFamily::Bursty => "bursty",
        })
    }
}

/// Seedable generator of churn traces. See the [module docs](self) for the
/// stochastic model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnGenerator {
    cores: usize,
    target_normalized_utilization: f64,
    events: usize,
    mean_interarrival: Time,
    lifetime_min: Time,
    lifetime_max: Time,
    period_min: Time,
    period_max: Time,
    utilization_spread: f64,
    max_task_utilization: f64,
    seed: u64,
    family: ChurnFamily,
    burst_acceleration: f64,
    burst_entry_probability: f64,
    burst_exit_probability: f64,
}

impl Default for ChurnGenerator {
    fn default() -> Self {
        ChurnGenerator {
            cores: 4,
            target_normalized_utilization: 0.7,
            events: 100,
            mean_interarrival: Time::from_millis(40),
            lifetime_min: Time::from_millis(100),
            lifetime_max: Time::from_secs(4),
            period_min: Time::from_millis(10),
            period_max: Time::from_secs(1),
            utilization_spread: 0.5,
            max_task_utilization: 1.0,
            seed: 0,
            family: ChurnFamily::Poisson,
            burst_acceleration: 4.0,
            burst_entry_probability: 0.35,
            burst_exit_probability: 0.15,
        }
    }
}

impl ChurnGenerator {
    /// A generator with the default churn model: 4 cores, target normalized
    /// utilization 0.7, 100 events, 40 ms mean inter-arrival, lifetimes
    /// log-uniform in 100 ms – 4 s.
    pub fn new() -> Self {
        ChurnGenerator::default()
    }

    /// Sets the platform size the target utilization is normalized against.
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores;
        self
    }

    /// Sets the target *normalized* utilization (offered load divided by
    /// core count) the population hovers around.
    pub fn target_normalized_utilization(mut self, u: f64) -> Self {
        self.target_normalized_utilization = u;
        self
    }

    /// Sets how many events (arrivals plus departures) the trace contains.
    pub fn events(mut self, events: usize) -> Self {
        self.events = events;
        self
    }

    /// Sets the mean inter-arrival time of the Poisson arrival process.
    pub fn mean_interarrival(mut self, mean: Time) -> Self {
        self.mean_interarrival = mean;
        self
    }

    /// Sets the log-uniform lifetime range.
    pub fn lifetime_range(mut self, min: Time, max: Time) -> Self {
        self.lifetime_min = min;
        self.lifetime_max = max;
        self
    }

    /// Sets the log-uniform period range of generated tasks.
    pub fn period_range(mut self, min: Time, max: Time) -> Self {
        self.period_min = min;
        self.period_max = max;
        self
    }

    /// Sets the relative spread of per-task utilizations around the base
    /// drawn from Little's law (0.0 = every task identical, 0.5 = ±50%).
    pub fn utilization_spread(mut self, spread: f64) -> Self {
        self.utilization_spread = spread;
        self
    }

    /// Caps every drawn per-task utilization (default 1.0). Lower caps
    /// generate heavy-task-free traces.
    pub fn max_task_utilization(mut self, cap: f64) -> Self {
        self.max_task_utilization = cap;
        self
    }

    /// Sets the RNG seed; equal configurations and seeds generate identical
    /// traces.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arrival-process family (default [`ChurnFamily::Poisson`]).
    pub fn family(mut self, family: ChurnFamily) -> Self {
        self.family = family;
        self
    }

    /// Tunes the bursty family: `acceleration` divides the inter-arrival
    /// mean during ON phases (must exceed 1), `entry`/`exit` are the
    /// per-arrival OFF→ON and ON→OFF transition probabilities (each in
    /// `(0, 1)`). The OFF-phase stretch is derived so the long-run
    /// arrival rate stays that of the Poisson family. Ignored under
    /// [`ChurnFamily::Poisson`].
    pub fn burst_profile(mut self, acceleration: f64, entry: f64, exit: f64) -> Self {
        self.burst_acceleration = acceleration;
        self.burst_entry_probability = entry;
        self.burst_exit_probability = exit;
        self
    }

    /// Expected steady-state population by Little's law.
    fn expected_population(&self) -> f64 {
        let mean_lifetime = log_uniform_mean(self.lifetime_min, self.lifetime_max);
        (mean_lifetime / self.mean_interarrival.as_secs_f64().max(1e-9)).max(1.0)
    }

    /// Generates the event trace.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when the configuration
    /// is inconsistent (zero events, non-positive target, empty ranges, ...).
    pub fn generate(&self) -> Result<Vec<WorkloadEvent>, TaskError> {
        Ok(self
            .generate_timed()?
            .into_iter()
            .map(|timed| timed.event)
            .collect())
    }

    /// [`generate`](Self::generate) with each event stamped by its absolute
    /// occurrence time (arrivals at the Poisson clock, departures at the
    /// end of their task's lifetime), for feeding the
    /// [`EventLoop`](crate::EventLoop). The RNG draw order is identical to
    /// `generate`, so the untimed trace is exactly the timed one with the
    /// stamps stripped.
    ///
    /// # Errors
    ///
    /// Returns [`TaskError::InvalidGeneratorConfig`] when the configuration
    /// is inconsistent (zero events, non-positive target, empty ranges, ...).
    pub fn generate_timed(&self) -> Result<Vec<TimedEvent>, TaskError> {
        self.validate()?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let base_utilization = (self.target_normalized_utilization * self.cores as f64
            / self.expected_population())
        .min(self.max_task_utilization);

        let mut events = Vec::with_capacity(self.events);
        // Departures pending, as (absolute time in seconds, task id), kept
        // sorted so the earliest departure is popped first.
        let mut departures: Vec<(f64, TaskId)> = Vec::new();
        let mut clock = 0.0f64;
        let mut next_id: u32 = 0;

        // Bursty modulation state. The OFF-phase stretch is derived from
        // the stationary ON share so the long-run arrival rate matches
        // the plain Poisson family's.
        let mut burst_on = false;
        let on_share = self.burst_entry_probability
            / (self.burst_entry_probability + self.burst_exit_probability);
        let off_stretch = (1.0 - on_share / self.burst_acceleration) / (1.0 - on_share);

        while events.len() < self.events {
            let mean = self.mean_interarrival.as_secs_f64();
            let interarrival = match self.family {
                // No extra draws: Poisson traces stay byte-identical to
                // pre-family generators.
                ChurnFamily::Poisson => exponential(&mut rng, mean),
                ChurnFamily::Bursty => {
                    let flip: f64 = rng.gen();
                    burst_on = if burst_on {
                        flip >= self.burst_exit_probability
                    } else {
                        flip < self.burst_entry_probability
                    };
                    let scale = if burst_on {
                        1.0 / self.burst_acceleration
                    } else {
                        off_stretch
                    };
                    exponential(&mut rng, mean * scale)
                }
            };
            let arrival_time = clock + interarrival;
            // Emit every departure due before the next arrival.
            while events.len() < self.events {
                match departures.first() {
                    Some(&(when, id)) if when <= arrival_time => {
                        departures.remove(0);
                        events.push(TimedEvent {
                            at: Time::from_secs_f64(when),
                            event: WorkloadEvent::Depart(id),
                        });
                    }
                    _ => break,
                }
            }
            if events.len() >= self.events {
                break;
            }
            clock = arrival_time;
            let task = self.draw_task(&mut rng, next_id, base_utilization)?;
            let lifetime = log_uniform(&mut rng, self.lifetime_min, self.lifetime_max);
            let idx = departures
                .binary_search_by(|(when, _)| {
                    when.partial_cmp(&(clock + lifetime))
                        .unwrap_or(std::cmp::Ordering::Less)
                })
                .unwrap_or_else(|i| i);
            departures.insert(idx, (clock + lifetime, TaskId(next_id)));
            events.push(TimedEvent {
                at: Time::from_secs_f64(clock),
                event: WorkloadEvent::Arrive(task),
            });
            next_id += 1;
        }
        Ok(events)
    }

    fn draw_task(
        &self,
        rng: &mut ChaCha8Rng,
        id: u32,
        base_utilization: f64,
    ) -> Result<Task, TaskError> {
        let spread = self.utilization_spread.clamp(0.0, 0.95);
        let factor = if spread > 0.0 {
            rng.gen_range((1.0 - spread)..=(1.0 + spread))
        } else {
            1.0
        };
        let utilization = (base_utilization * factor).clamp(1e-4, self.max_task_utilization);
        let period = Time::from_secs_f64(log_uniform(rng, self.period_min, self.period_max));
        // Round to the same 100 µs granularity the offline generator uses so
        // hyperperiods stay manageable for simulation replay.
        let granularity = Time::from_micros(100);
        let period = Time::from_nanos(
            (period.as_nanos() / granularity.as_nanos()).max(1) * granularity.as_nanos(),
        );
        let wcet = period
            .scale(utilization)
            .max(Time::from_nanos(1))
            .min(period);
        Task::new(id, wcet, period)
    }

    fn validate(&self) -> Result<(), TaskError> {
        let invalid = |reason: String| TaskError::InvalidGeneratorConfig { reason };
        if self.events == 0 {
            return Err(invalid("churn trace needs at least one event".to_owned()));
        }
        if self.cores == 0 {
            return Err(invalid(
                "churn generation needs at least one core".to_owned(),
            ));
        }
        if self.target_normalized_utilization <= 0.0
            || !self.target_normalized_utilization.is_finite()
        {
            return Err(invalid(format!(
                "target normalized utilization must be positive and finite, got {}",
                self.target_normalized_utilization
            )));
        }
        if self.mean_interarrival.is_zero() {
            return Err(invalid(
                "mean inter-arrival time must be positive".to_owned(),
            ));
        }
        if !self.max_task_utilization.is_finite()
            || self.max_task_utilization <= 0.0
            || self.max_task_utilization > 1.0
        {
            return Err(invalid(format!(
                "per-task utilization cap must be in (0, 1], got {}",
                self.max_task_utilization
            )));
        }
        for (name, min, max) in [
            ("lifetime", self.lifetime_min, self.lifetime_max),
            ("period", self.period_min, self.period_max),
        ] {
            if min.is_zero() || max < min {
                return Err(invalid(format!("invalid {name} range [{min}, {max}]")));
            }
        }
        if self.family == ChurnFamily::Bursty {
            if !self.burst_acceleration.is_finite() || self.burst_acceleration <= 1.0 {
                return Err(invalid(format!(
                    "burst acceleration must be finite and exceed 1, got {}",
                    self.burst_acceleration
                )));
            }
            for (name, p) in [
                ("entry", self.burst_entry_probability),
                ("exit", self.burst_exit_probability),
            ] {
                if !p.is_finite() || p <= 0.0 || p >= 1.0 {
                    return Err(invalid(format!(
                        "burst {name} probability must be in (0, 1), got {p}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Inserts lease-renewal heartbeats into a timed trace: every arrival
/// that stays resident longer than `every` emits a
/// [`WorkloadEvent::Renew`] at each multiple of `every` after its arrival
/// and strictly before its departure (or, for tasks that never depart
/// in-trace, before the final trace timestamp). The result is sorted by
/// timestamp with renewals ordered after same-instant trace events —
/// fully deterministic, no RNG involved.
///
/// Feeding the renewed trace to an [`EventLoop`](crate::EventLoop) with a
/// lease of `every` (or slightly more) keeps admitted tasks alive for
/// their full trace lifetime, while un-renewed leases still expire.
pub fn inject_renewals(trace: &[TimedEvent], every: Time) -> Vec<TimedEvent> {
    if every.is_zero() || trace.is_empty() {
        return trace.to_vec();
    }
    let horizon = trace.iter().map(|t| t.at).max().unwrap_or(Time::ZERO);
    let mut departs: std::collections::BTreeMap<TaskId, Time> = std::collections::BTreeMap::new();
    for timed in trace {
        if let WorkloadEvent::Depart(id) = timed.event {
            departs.entry(id).or_insert(timed.at);
        }
    }
    let mut out = trace.to_vec();
    for timed in trace {
        if let WorkloadEvent::Arrive(task) = &timed.event {
            let until = departs.get(&task.id()).copied().unwrap_or(horizon);
            let mut at = timed.at + every;
            while at < until {
                out.push(TimedEvent {
                    at,
                    event: WorkloadEvent::Renew(task.id()),
                });
                at += every;
            }
        }
    }
    // Stable: same-instant originals keep their order and precede the
    // renewals generated for that instant.
    out.sort_by_key(|t| t.at);
    out
}

/// An exponential sample with the given mean (inverse-CDF method).
fn exponential(rng: &mut ChaCha8Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen::<f64>().clamp(0.0, 1.0 - 1e-12);
    -mean * (1.0 - u).ln()
}

/// A log-uniform sample in `[min, max]`, in seconds.
fn log_uniform(rng: &mut ChaCha8Rng, min: Time, max: Time) -> f64 {
    let lo = min.as_secs_f64().max(1e-9).ln();
    let hi = max.as_secs_f64().max(1e-9).ln();
    let v = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
    v.exp()
}

/// The mean of a log-uniform distribution over `[min, max]`, in seconds:
/// `(max − min) / ln(max / min)`.
fn log_uniform_mean(min: Time, max: Time) -> f64 {
    let a = min.as_secs_f64().max(1e-9);
    let b = max.as_secs_f64().max(a);
    if (b - a).abs() < 1e-12 {
        a
    } else {
        (b - a) / (b / a).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_deterministic_per_seed() {
        let gen = ChurnGenerator::new().events(50).seed(7);
        assert_eq!(gen.generate().unwrap(), gen.generate().unwrap());
        let other = ChurnGenerator::new().events(50).seed(8).generate().unwrap();
        assert_ne!(gen.generate().unwrap(), other);
    }

    #[test]
    fn timed_traces_strip_to_untimed_and_are_monotonic() {
        let gen = ChurnGenerator::new().events(120).seed(13);
        let timed = gen.generate_timed().unwrap();
        let untimed = gen.generate().unwrap();
        assert_eq!(timed.len(), untimed.len());
        assert!(timed.iter().zip(&untimed).all(|(t, u)| &t.event == u));
        assert!(
            timed.windows(2).all(|w| w[0].at <= w[1].at),
            "timestamps must be non-decreasing"
        );
    }

    #[test]
    fn traces_have_the_requested_length_and_consistent_ids() {
        let events = ChurnGenerator::new().events(80).seed(3).generate().unwrap();
        assert_eq!(events.len(), 80);
        let mut alive = std::collections::BTreeSet::new();
        for event in &events {
            match event {
                WorkloadEvent::Arrive(task) => {
                    assert!(alive.insert(task.id()), "duplicate arrival {}", task.id());
                    assert!(task.wcet() <= task.period());
                    assert!(task.utilization() <= 1.0 + 1e-9);
                }
                WorkloadEvent::Depart(id) => {
                    assert!(alive.remove(id), "departure of unknown task {id}");
                }
                WorkloadEvent::Renew(id) => panic!("generator never emits renewals, got {id}"),
            }
        }
    }

    #[test]
    fn departures_follow_their_arrivals() {
        let events = ChurnGenerator::new()
            .events(120)
            .lifetime_range(Time::from_millis(20), Time::from_millis(200))
            .seed(11)
            .generate()
            .unwrap();
        assert!(
            events.iter().any(|e| !e.is_arrival()),
            "short lifetimes must produce departures"
        );
    }

    #[test]
    fn offered_load_tracks_the_target() {
        let gen = ChurnGenerator::new()
            .cores(4)
            .target_normalized_utilization(0.6)
            .events(400)
            .seed(5);
        let events = gen.generate().unwrap();
        // Track the running offered load and average it over events.
        let mut alive: std::collections::BTreeMap<TaskId, f64> = std::collections::BTreeMap::new();
        let mut samples = Vec::new();
        for event in &events {
            match event {
                WorkloadEvent::Arrive(task) => {
                    alive.insert(task.id(), task.utilization());
                }
                WorkloadEvent::Depart(id) => {
                    alive.remove(id);
                }
                WorkloadEvent::Renew(_) => {}
            }
            samples.push(alive.values().sum::<f64>());
        }
        // Skip the ramp-up; the steady-state average should be within ±50%
        // of the 2.4 target (the process is stochastic by design).
        let steady = &samples[samples.len() / 2..];
        let mean = steady.iter().sum::<f64>() / steady.len() as f64;
        assert!(
            (1.2..=3.6).contains(&mean),
            "steady-state offered load {mean} far from target 2.4"
        );
    }

    #[test]
    fn utilization_cap_bounds_every_arrival() {
        let events = ChurnGenerator::new()
            .target_normalized_utilization(0.9)
            .utilization_spread(0.9)
            .max_task_utilization(0.25)
            .events(200)
            .seed(9)
            .generate()
            .unwrap();
        for event in &events {
            if let WorkloadEvent::Arrive(task) = event {
                assert!(task.utilization() <= 0.25 + 1e-9);
            }
        }
        for bad in [0.0, -0.5, 1.5, f64::NAN] {
            assert!(ChurnGenerator::new()
                .max_task_utilization(bad)
                .generate()
                .is_err());
        }
    }

    #[test]
    fn explicit_poisson_family_matches_the_default() {
        // The family knob must not perturb the Poisson draw order: a
        // generator explicitly set to Poisson (with arbitrary burst
        // parameters, which Poisson ignores) reproduces the default
        // trace byte-for-byte.
        let default_trace = ChurnGenerator::new()
            .events(80)
            .seed(21)
            .generate_timed()
            .unwrap();
        let explicit = ChurnGenerator::new()
            .events(80)
            .seed(21)
            .family(ChurnFamily::Poisson)
            .burst_profile(8.0, 0.5, 0.5)
            .generate_timed()
            .unwrap();
        assert_eq!(default_trace, explicit);
    }

    #[test]
    fn bursty_traces_are_deterministic_and_differ_from_poisson() {
        let bursty = ChurnGenerator::new()
            .events(120)
            .seed(21)
            .family(ChurnFamily::Bursty);
        assert_eq!(
            bursty.generate_timed().unwrap(),
            bursty.generate_timed().unwrap(),
            "equal seeds must reproduce bursty traces byte-identically"
        );
        let poisson = ChurnGenerator::new()
            .events(120)
            .seed(21)
            .generate_timed()
            .unwrap();
        assert_ne!(
            bursty.generate_timed().unwrap(),
            poisson,
            "modulation must change the timeline"
        );
    }

    #[test]
    fn bursty_long_run_rate_tracks_poisson() {
        // The OFF stretch is derived so the stationary arrival rate
        // matches the memoryless family: over a long trace the last
        // arrival times should agree within a factor of two.
        let horizon = |family: ChurnFamily| {
            let trace = ChurnGenerator::new()
                .events(600)
                .seed(3)
                .family(family)
                .generate_timed()
                .unwrap();
            trace
                .iter()
                .filter(|t| t.event.is_arrival())
                .map(|t| t.at)
                .max()
                .unwrap()
                .as_secs_f64()
        };
        let p = horizon(ChurnFamily::Poisson);
        let b = horizon(ChurnFamily::Bursty);
        assert!(
            (0.5..=2.0).contains(&(b / p)),
            "bursty horizon {b} drifted from poisson horizon {p}"
        );
    }

    #[test]
    fn bursty_burstiness_raises_interarrival_variance() {
        let arrivals = |family: ChurnFamily| -> Vec<f64> {
            ChurnGenerator::new()
                .events(400)
                .seed(9)
                .family(family)
                .generate_timed()
                .unwrap()
                .into_iter()
                .filter(|t| t.event.is_arrival())
                .map(|t| t.at.as_secs_f64())
                .collect()
        };
        let cv2 = |times: &[f64]| {
            let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = cv2(&arrivals(ChurnFamily::Poisson));
        let bursty = cv2(&arrivals(ChurnFamily::Bursty));
        assert!(
            bursty > poisson,
            "bursty CV² {bursty} should exceed poisson CV² {poisson}"
        );
    }

    #[test]
    fn bursty_parameters_are_validated_and_parse() {
        let bad = |g: ChurnGenerator| g.family(ChurnFamily::Bursty).generate().is_err();
        assert!(bad(ChurnGenerator::new().burst_profile(1.0, 0.3, 0.3)));
        assert!(bad(ChurnGenerator::new().burst_profile(f64::NAN, 0.3, 0.3)));
        assert!(bad(ChurnGenerator::new().burst_profile(4.0, 0.0, 0.3)));
        assert!(bad(ChurnGenerator::new().burst_profile(4.0, 0.3, 1.0)));
        // Poisson ignores (and so tolerates) nonsense burst parameters.
        assert!(ChurnGenerator::new()
            .burst_profile(0.0, 9.0, -1.0)
            .generate()
            .is_ok());
        assert_eq!("bursty".parse::<ChurnFamily>(), Ok(ChurnFamily::Bursty));
        assert_eq!("Poisson".parse::<ChurnFamily>(), Ok(ChurnFamily::Poisson));
        assert!("storm".parse::<ChurnFamily>().is_err());
        assert_eq!(ChurnFamily::Bursty.to_string(), "bursty");
    }

    #[test]
    fn injected_renewals_heartbeat_between_arrival_and_departure() {
        let trace = ChurnGenerator::new()
            .events(60)
            .lifetime_range(Time::from_millis(50), Time::from_millis(400))
            .seed(19)
            .generate_timed()
            .unwrap();
        let every = Time::from_millis(40);
        let renewed = inject_renewals(&trace, every);
        assert!(
            renewed.iter().any(|t| t.event.is_renewal()),
            "lifetimes above 40 ms must produce heartbeats"
        );
        assert!(
            renewed.windows(2).all(|w| w[0].at <= w[1].at),
            "renewed trace must stay time-sorted"
        );
        // Originals survive untouched, renewals fall strictly inside
        // their task's residency window.
        let originals: Vec<_> = renewed
            .iter()
            .filter(|t| !t.event.is_renewal())
            .cloned()
            .collect();
        assert_eq!(originals, trace);
        for timed in renewed.iter().filter(|t| t.event.is_renewal()) {
            let id = timed.event.task_id();
            let arrive = trace
                .iter()
                .find(|t| t.event.is_arrival() && t.event.task_id() == id)
                .expect("renewal of an arrived task")
                .at;
            let depart = trace
                .iter()
                .find(|t| matches!(t.event, WorkloadEvent::Depart(d) if d == id))
                .map(|t| t.at);
            assert!(timed.at > arrive);
            if let Some(depart) = depart {
                assert!(timed.at < depart, "renewal after departure of {id}");
            }
        }
        // Determinism and edge cases.
        assert_eq!(renewed, inject_renewals(&trace, every));
        assert_eq!(inject_renewals(&trace, Time::ZERO), trace);
        assert_eq!(inject_renewals(&[], every), Vec::<TimedEvent>::new());
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(ChurnGenerator::new().events(0).generate().is_err());
        assert!(ChurnGenerator::new().cores(0).generate().is_err());
        assert!(ChurnGenerator::new()
            .target_normalized_utilization(0.0)
            .generate()
            .is_err());
        assert!(ChurnGenerator::new()
            .target_normalized_utilization(f64::NAN)
            .generate()
            .is_err());
        assert!(ChurnGenerator::new()
            .mean_interarrival(Time::ZERO)
            .generate()
            .is_err());
        assert!(ChurnGenerator::new()
            .lifetime_range(Time::from_millis(10), Time::from_millis(1))
            .generate()
            .is_err());
        assert!(ChurnGenerator::new()
            .period_range(Time::ZERO, Time::from_millis(1))
            .generate()
            .is_err());
    }
}
