//! The admission engines' telemetry surface.
//!
//! [`EngineMetrics`] bundles what one decision engine (a solo
//! [`AdmissionController`](crate::AdmissionController) or a
//! [`ShardedAdmission`](crate::ShardedAdmission) service) owns: a
//! [`Registry`] of named metrics, a bounded [`TraceRing`] of per-decision
//! [`StageTrace`](spms_telemetry::StageTrace)s, and a short history of
//! rebalance ticks. It is a plain owned value — cloned with its engine,
//! merged by experiment drivers in grid order — which is what keeps the
//! deterministic metric section byte-identical across `--threads`.
//!
//! The metric name space (see the README's Observability section):
//!
//! * `spms_*` outcome metrics are recorded **only from final decisions**
//!   (the engine that owns the decision stream calls
//!   [`record_decision`](EngineMetrics::record_decision)). A sharded
//!   service drops its shards' outcome counters when merging
//!   ([`Registry::merge_where`]) because shard-level `decide` calls
//!   include overflow retries.
//! * `spms_mech_*` mechanism metrics describe how the cascade got there:
//!   per-stage attempt/success counters, probe and cache hit/miss counts
//!   folded in from the [`scoped`] hot counters, routing overflow and
//!   rebalance activity.
//! * `spms_timing_*` metrics hold every wall-clock figure: per-decision
//!   and per-stage latency histograms and a decisions/sec gauge.

use std::collections::VecDeque;

use spms_telemetry::{
    scoped, CounterId, GaugeId, Histogram, HistogramId, HotDeltas, MetricClass, Registry,
    SnapshotFilter, SpanOutcome, StageSpan, TraceRing, HOT_COUNTERS,
};

use crate::{DecisionKind, DecisionPath, RejectionReason};

/// How many per-decision stage traces an engine retains by default.
pub const DEFAULT_TRACE_RING_CAPACITY: usize = 256;

/// How many rebalance ticks the per-tick history retains.
pub const REBALANCE_HISTORY_CAPACITY: usize = 64;

/// One retained rebalance tick: which tick it was and how many tasks it
/// moved (0 for a no-op tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceTick {
    /// 0-based tick sequence number.
    pub seq: u64,
    /// Tasks migrated between shards by this tick.
    pub moves: u64,
}

/// The cascade stages, in attempt order (identical to [`DecisionPath`],
/// which doubles as the stage identifier). The cross-shard split stage
/// runs in the sharded service, after every shard's own cascade failed.
const STAGES: [DecisionPath; 5] = [
    DecisionPath::FastWhole,
    DecisionPath::FastSplit,
    DecisionPath::Repair,
    DecisionPath::FullRepartition,
    DecisionPath::CrossShardSplit,
];

fn stage_index(path: DecisionPath) -> usize {
    match path {
        DecisionPath::FastWhole => 0,
        DecisionPath::FastSplit => 1,
        DecisionPath::Repair => 2,
        DecisionPath::FullRepartition => 3,
        DecisionPath::CrossShardSplit => 4,
    }
}

/// Snake-case stage name used in metric names and trace spans.
pub fn stage_name(path: DecisionPath) -> &'static str {
    match path {
        DecisionPath::FastWhole => "fast_whole",
        DecisionPath::FastSplit => "fast_split",
        DecisionPath::Repair => "repair",
        DecisionPath::FullRepartition => "full_repartition",
        DecisionPath::CrossShardSplit => "cross_shard_split",
    }
}

/// The trace-ring label of a final decision.
pub fn decision_label(kind: &DecisionKind) -> &'static str {
    match kind {
        DecisionKind::Admitted { path, .. } => match path {
            DecisionPath::FastWhole => "admitted_fast_whole",
            DecisionPath::FastSplit => "admitted_fast_split",
            DecisionPath::Repair => "admitted_repair",
            DecisionPath::FullRepartition => "admitted_full_repartition",
            DecisionPath::CrossShardSplit => "admitted_cross_shard_split",
        },
        DecisionKind::Rejected { reason } => match reason {
            RejectionReason::DuplicateTask => "rejected_duplicate",
            RejectionReason::PlatformOverloaded => "rejected_overload",
            RejectionReason::OverheadUnabsorbable => "rejected_overhead",
            RejectionReason::NoFeasiblePlacement => "rejected_no_placement",
        },
        DecisionKind::Departed => "departed",
        DecisionKind::DepartUnknown => "depart_unknown",
        DecisionKind::RenewNoted => "renew_noted",
        DecisionKind::EvictedOnFailure => "evicted_on_failure",
    }
}

#[derive(Debug, Clone)]
struct Ids {
    // Outcome.
    events: CounterId,
    arrivals: CounterId,
    departures: CounterId,
    unknown_departures: CounterId,
    admitted: CounterId,
    admitted_by_path: [CounterId; 5],
    rejected: CounterId,
    rejected_duplicate: CounterId,
    rejected_overload: CounterId,
    rejected_overhead: CounterId,
    rejected_no_placement: CounterId,
    migrations: CounterId,
    inflation_ns: CounterId,
    lease_expirations: CounterId,
    // Mechanism.
    stage_attempts: [CounterId; 5],
    stage_successes: [CounterId; 5],
    hot: [CounterId; spms_telemetry::HOT_COUNTER_COUNT],
    overflow_admissions: CounterId,
    cross_shard_attempts: CounterId,
    cross_shard_admissions: CounterId,
    cross_shard_aborts: CounterId,
    cross_shard_pieces: CounterId,
    rebalance_ticks: CounterId,
    rebalance_moves: CounterId,
    rebalance_last_moves: GaugeId,
    fault_injections: CounterId,
    fault_crashes: CounterId,
    fault_stalls: CounterId,
    fault_corruptions: CounterId,
    fault_cost_spikes: CounterId,
    fault_drained: CounterId,
    fault_recoveries: CounterId,
    fault_evictions: CounterId,
    fault_rejoins: CounterId,
    degrade_level: GaugeId,
    degrade_escalations: CounterId,
    degrade_recoveries: CounterId,
    degrade_shed_stages: CounterId,
    audit_checks: CounterId,
    audit_violations: CounterId,
    audit_repairs: CounterId,
    // Timing.
    decision_latency: HistogramId,
    stage_latency: [HistogramId; 5],
    decisions_per_sec: GaugeId,
}

/// One engine's metrics: registry, stage-trace ring, and rebalance
/// history. See the [module docs](self).
#[derive(Debug, Clone)]
pub struct EngineMetrics {
    registry: Registry,
    ids: Ids,
    ring: TraceRing,
    /// Span scratch for the decision currently being made.
    open_spans: Vec<StageSpan>,
    rebalance_history: VecDeque<RebalanceTick>,
}

impl EngineMetrics {
    /// A fresh metrics bundle whose trace ring keeps `ring_capacity`
    /// decisions (0 disables trace retention).
    pub fn new(ring_capacity: usize) -> Self {
        let mut registry = Registry::new();
        let outcome = |r: &mut Registry, name: &str| r.counter(name, MetricClass::Outcome);
        let mech = |r: &mut Registry, name: &str| r.counter(name, MetricClass::Mechanism);
        let ids = Ids {
            events: outcome(&mut registry, "spms_events_total"),
            arrivals: outcome(&mut registry, "spms_arrivals_total"),
            departures: outcome(&mut registry, "spms_departures_total"),
            unknown_departures: outcome(&mut registry, "spms_unknown_departures_total"),
            admitted: outcome(&mut registry, "spms_admitted_total"),
            admitted_by_path: STAGES.map(|stage| {
                registry.counter(
                    &format!("spms_admitted_{}_total", stage_name(stage)),
                    MetricClass::Outcome,
                )
            }),
            rejected: outcome(&mut registry, "spms_rejected_total"),
            rejected_duplicate: outcome(&mut registry, "spms_rejected_duplicate_total"),
            rejected_overload: outcome(&mut registry, "spms_rejected_overload_total"),
            rejected_overhead: outcome(&mut registry, "spms_rejected_overhead_total"),
            rejected_no_placement: outcome(&mut registry, "spms_rejected_no_placement_total"),
            migrations: outcome(&mut registry, "spms_migrations_total"),
            inflation_ns: outcome(&mut registry, "spms_inflation_charged_ns_total"),
            lease_expirations: outcome(&mut registry, "spms_lease_expirations_total"),
            stage_attempts: STAGES.map(|stage| {
                registry.counter(
                    &format!("spms_mech_stage_{}_attempts_total", stage_name(stage)),
                    MetricClass::Mechanism,
                )
            }),
            stage_successes: STAGES.map(|stage| {
                registry.counter(
                    &format!("spms_mech_stage_{}_successes_total", stage_name(stage)),
                    MetricClass::Mechanism,
                )
            }),
            hot: HOT_COUNTERS
                .map(|counter| registry.counter(counter.metric_name(), MetricClass::Mechanism)),
            overflow_admissions: mech(&mut registry, "spms_mech_overflow_admissions_total"),
            cross_shard_attempts: mech(&mut registry, "spms_mech_cross_shard_attempts_total"),
            cross_shard_admissions: mech(&mut registry, "spms_mech_cross_shard_admissions_total"),
            cross_shard_aborts: mech(&mut registry, "spms_mech_cross_shard_aborts_total"),
            cross_shard_pieces: mech(&mut registry, "spms_mech_cross_shard_pieces_total"),
            rebalance_ticks: mech(&mut registry, "spms_mech_rebalance_ticks_total"),
            rebalance_moves: mech(&mut registry, "spms_mech_rebalance_moves_total"),
            rebalance_last_moves: registry
                .gauge("spms_mech_rebalance_last_moves", MetricClass::Mechanism),
            fault_injections: mech(&mut registry, "spms_mech_fault_injections_total"),
            fault_crashes: mech(&mut registry, "spms_mech_fault_crashes_total"),
            fault_stalls: mech(&mut registry, "spms_mech_fault_stalls_total"),
            fault_corruptions: mech(&mut registry, "spms_mech_fault_corruptions_total"),
            fault_cost_spikes: mech(&mut registry, "spms_mech_fault_cost_spikes_total"),
            fault_drained: mech(&mut registry, "spms_mech_fault_drained_total"),
            fault_recoveries: mech(&mut registry, "spms_mech_fault_recoveries_total"),
            fault_evictions: mech(&mut registry, "spms_mech_fault_evictions_total"),
            fault_rejoins: mech(&mut registry, "spms_mech_fault_rejoins_total"),
            degrade_level: registry.gauge("spms_mech_degrade_level", MetricClass::Mechanism),
            degrade_escalations: mech(&mut registry, "spms_mech_degrade_escalations_total"),
            degrade_recoveries: mech(&mut registry, "spms_mech_degrade_recoveries_total"),
            degrade_shed_stages: mech(&mut registry, "spms_mech_degrade_shed_stages_total"),
            audit_checks: mech(&mut registry, "spms_mech_audit_checks_total"),
            audit_violations: mech(&mut registry, "spms_mech_audit_violations_total"),
            audit_repairs: mech(&mut registry, "spms_mech_audit_repairs_total"),
            decision_latency: registry
                .histogram("spms_timing_decision_latency_ns", MetricClass::Timing),
            stage_latency: STAGES.map(|stage| {
                registry.histogram(
                    &format!("spms_timing_stage_{}_ns", stage_name(stage)),
                    MetricClass::Timing,
                )
            }),
            decisions_per_sec: registry.gauge("spms_timing_decisions_per_sec", MetricClass::Timing),
        };
        EngineMetrics {
            registry,
            ids,
            ring: TraceRing::new(ring_capacity),
            open_spans: Vec::new(),
            rebalance_history: VecDeque::new(),
        }
    }

    /// The engine's registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The per-decision stage-trace ring.
    pub fn traces(&self) -> &TraceRing {
        &self.ring
    }

    /// The retained rebalance ticks, oldest first.
    pub fn rebalance_history(&self) -> impl Iterator<Item = &RebalanceTick> {
        self.rebalance_history.iter()
    }

    /// The decision latency histogram (timing section).
    pub fn decision_latency(&self) -> &Histogram {
        self.registry.histogram_ref(self.ids.decision_latency)
    }

    /// Renders a filtered snapshot of the registry.
    pub fn snapshot(&self, filter: SnapshotFilter) -> spms_telemetry::Snapshot {
        self.registry.snapshot(filter)
    }

    // ------------------------------------------------------------------
    // cascade-stage recording (controller)
    // ------------------------------------------------------------------

    /// Records one cascade-stage attempt: attempt/success counters, the
    /// stage latency histogram, and a span in the open decision's trace.
    pub fn record_stage(&mut self, stage: DecisionPath, success: bool, nanos: u64) {
        let i = stage_index(stage);
        self.registry.inc(self.ids.stage_attempts[i]);
        if success {
            self.registry.inc(self.ids.stage_successes[i]);
        }
        self.registry.record(self.ids.stage_latency[i], nanos);
        self.open_spans.push(StageSpan {
            stage: stage_name(stage),
            outcome: if success {
                SpanOutcome::Success
            } else {
                SpanOutcome::Failure
            },
            nanos,
        });
    }

    /// Finishes the open decision: folds the thread-local hot-counter
    /// `deltas` into the mechanism section, records the outcome counters
    /// and latency, and moves the collected stage spans into the trace
    /// ring under the decision's label.
    pub fn finish_decision(
        &mut self,
        task: u64,
        kind: &DecisionKind,
        nanos: u64,
        deltas: &HotDeltas,
    ) {
        self.fold_hot(deltas);
        self.record_outcome(kind);
        self.registry.record(self.ids.decision_latency, nanos);
        let spans = std::mem::take(&mut self.open_spans);
        self.ring.record(task, decision_label(kind), spans);
    }

    /// Records the outcome counters of one final decision (no trace, no
    /// latency) — the service-side entry point for decisions whose
    /// cascade ran inside a shard.
    pub fn record_outcome(&mut self, kind: &DecisionKind) {
        self.registry.inc(self.ids.events);
        match kind {
            DecisionKind::Admitted {
                path,
                migrations,
                inflation,
            } => {
                self.registry.inc(self.ids.arrivals);
                self.registry.inc(self.ids.admitted);
                self.registry
                    .inc(self.ids.admitted_by_path[stage_index(*path)]);
                self.registry.add(self.ids.migrations, *migrations as u64);
                self.registry
                    .add(self.ids.inflation_ns, inflation.as_nanos());
            }
            DecisionKind::Rejected { reason } => {
                self.registry.inc(self.ids.arrivals);
                self.registry.inc(self.ids.rejected);
                let id = match reason {
                    RejectionReason::DuplicateTask => self.ids.rejected_duplicate,
                    RejectionReason::PlatformOverloaded => self.ids.rejected_overload,
                    RejectionReason::OverheadUnabsorbable => self.ids.rejected_overhead,
                    RejectionReason::NoFeasiblePlacement => self.ids.rejected_no_placement,
                };
                self.registry.inc(id);
            }
            DecisionKind::Departed => {
                self.registry.inc(self.ids.departures);
            }
            DecisionKind::DepartUnknown => {
                self.registry.inc(self.ids.unknown_departures);
            }
            // Lease renewals are event-loop bookkeeping; no dedicated
            // outcome counter so the outcome section's name set stays
            // exactly what it was before leases existed.
            DecisionKind::RenewNoted => {}
            // Failover evictions follow the RenewNoted precedent: the
            // outcome name set stays byte-identical to fault-free runs,
            // and the eviction count lives on the mechanism side
            // (`spms_mech_fault_evictions_total`).
            DecisionKind::EvictedOnFailure => {}
        }
    }

    // ------------------------------------------------------------------
    // service-side recording
    // ------------------------------------------------------------------

    /// Records the service-level latency of one decision.
    pub fn record_decision_latency(&mut self, nanos: u64) {
        self.registry.record(self.ids.decision_latency, nanos);
    }

    /// Counts an admission that landed off its home shard.
    pub fn record_overflow_admission(&mut self) {
        self.registry.inc(self.ids.overflow_admissions);
    }

    /// Counts one cross-shard planning attempt (the service's planner ran,
    /// whatever the outcome).
    pub fn record_cross_shard_attempt(&mut self) {
        self.registry.inc(self.ids.cross_shard_attempts);
    }

    /// Counts one committed cross-shard split and the `pieces` it placed
    /// across shards.
    pub fn record_cross_shard_admission(&mut self, pieces: u64) {
        self.registry.inc(self.ids.cross_shard_admissions);
        self.registry.add(self.ids.cross_shard_pieces, pieces);
    }

    /// Counts one aborted cross-shard plan (some participant refused its
    /// piece; every shard was rewound).
    pub fn record_cross_shard_abort(&mut self) {
        self.registry.inc(self.ids.cross_shard_aborts);
    }

    /// Records one rebalance tick (no-op ticks included): bumps the tick
    /// counter, adds `moves` to the move counter, sets the last-moves
    /// gauge, and appends to the bounded per-tick history. Returns the
    /// tick's sequence number.
    pub fn record_rebalance_tick(&mut self, moves: u64) -> u64 {
        let seq = self.registry.counter_value(self.ids.rebalance_ticks);
        self.registry.inc(self.ids.rebalance_ticks);
        self.registry.add(self.ids.rebalance_moves, moves);
        self.registry
            .set_gauge(self.ids.rebalance_last_moves, moves);
        if self.rebalance_history.len() == REBALANCE_HISTORY_CAPACITY {
            self.rebalance_history.pop_front();
        }
        self.rebalance_history
            .push_back(RebalanceTick { seq, moves });
        seq
    }

    /// Folds a thread-local hot-counter delta into the mechanism section
    /// — for work done outside a decision (e.g. the rebalancer's
    /// cross-shard planning probes). `HotDeltas::iter` yields in the same
    /// index order the `hot` ids were registered in.
    pub fn fold_hot(&mut self, deltas: &HotDeltas) {
        for (i, (_, delta)) in deltas.iter().enumerate() {
            if delta > 0 {
                self.registry.add(self.ids.hot[i], delta);
            }
        }
    }

    /// Counts a lease-expiry departure synthesized by the event loop.
    pub fn record_lease_expiration(&mut self) {
        self.registry.inc(self.ids.lease_expirations);
    }

    // ------------------------------------------------------------------
    // fault injection, failover, degrade ladder, self-audit
    // ------------------------------------------------------------------

    /// Counts one injected fault by its [`FaultKind::label`] (see
    /// `spms-faults`); unknown labels still count as injections.
    pub fn record_fault_injection(&mut self, label: &str) {
        self.registry.inc(self.ids.fault_injections);
        let per_kind = match label {
            "shard_crash" => Some(self.ids.fault_crashes),
            "shard_stall" => Some(self.ids.fault_stalls),
            "cache_corruption" => Some(self.ids.fault_corruptions),
            "cost_spike" => Some(self.ids.fault_cost_spikes),
            _ => None,
        };
        if let Some(id) = per_kind {
            self.registry.inc(id);
        }
    }

    /// Counts the tasks drained off a crashed shard.
    pub fn record_fault_drained(&mut self, tasks: u64) {
        self.registry.add(self.ids.fault_drained, tasks);
    }

    /// Counts one drained task re-admitted onto a surviving shard.
    pub fn record_fault_recovery(&mut self) {
        self.registry.inc(self.ids.fault_recoveries);
    }

    /// Counts one drained task no survivor could take
    /// ([`DecisionKind::EvictedOnFailure`]).
    pub fn record_fault_eviction(&mut self) {
        self.registry.inc(self.ids.fault_evictions);
    }

    /// Counts one crashed shard rejoining the placement rotation.
    pub fn record_fault_rejoin(&mut self) {
        self.registry.inc(self.ids.fault_rejoins);
    }

    /// Sets the degrade-level gauge and counts the transition that moved
    /// it (`escalated` — up one rung — or a hysteresis recovery down one).
    pub fn record_degrade_transition(&mut self, level: u64, escalated: bool) {
        self.registry.set_gauge(self.ids.degrade_level, level);
        self.registry.inc(if escalated {
            self.ids.degrade_escalations
        } else {
            self.ids.degrade_recoveries
        });
    }

    /// Counts one cascade stage withheld by the active degrade level.
    pub fn record_degrade_shed_stage(&mut self) {
        self.registry.inc(self.ids.degrade_shed_stages);
    }

    /// Counts one self-audit pass over a core's cached analysis. A
    /// `repaired` audit found a divergent memo (counted as a violation)
    /// and rebuilt it from scratch (counted as a repair) — so
    /// `violations - repairs` is the unrepaired backlog, which must stay
    /// zero.
    pub fn record_audit_check(&mut self, repaired: bool) {
        self.registry.inc(self.ids.audit_checks);
        if repaired {
            self.registry.inc(self.ids.audit_violations);
            self.registry.inc(self.ids.audit_repairs);
        }
    }

    /// Sets the decisions/sec throughput gauge (timing section; set by
    /// drivers that know the wall-clock window).
    pub fn set_decisions_per_sec(&mut self, value: u64) {
        self.registry.set_gauge(self.ids.decisions_per_sec, value);
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics::new(DEFAULT_TRACE_RING_CAPACITY)
    }
}

/// Re-export of the scoped hot-counter snapshot, so engine code does not
/// need a direct `spms_telemetry` dependency path for the common pattern.
pub fn hot_snapshot() -> HotDeltas {
    scoped::thread_snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::Time;

    #[test]
    fn outcome_counters_follow_final_decisions() {
        let mut m = EngineMetrics::new(8);
        m.record_outcome(&DecisionKind::Admitted {
            path: DecisionPath::FastSplit,
            migrations: 2,
            inflation: Time::from_nanos(50),
        });
        m.record_outcome(&DecisionKind::Rejected {
            reason: RejectionReason::PlatformOverloaded,
        });
        m.record_outcome(&DecisionKind::Departed);
        let r = m.registry();
        assert_eq!(r.counter_by_name("spms_events_total"), Some(3));
        assert_eq!(r.counter_by_name("spms_arrivals_total"), Some(2));
        assert_eq!(r.counter_by_name("spms_admitted_total"), Some(1));
        assert_eq!(r.counter_by_name("spms_admitted_fast_split_total"), Some(1));
        assert_eq!(r.counter_by_name("spms_rejected_overload_total"), Some(1));
        assert_eq!(r.counter_by_name("spms_migrations_total"), Some(2));
        assert_eq!(
            r.counter_by_name("spms_inflation_charged_ns_total"),
            Some(50)
        );
        assert_eq!(r.counter_by_name("spms_departures_total"), Some(1));
    }

    #[test]
    fn stages_count_attempts_successes_and_trace_spans() {
        let mut m = EngineMetrics::new(8);
        m.record_stage(DecisionPath::FastWhole, false, 10);
        m.record_stage(DecisionPath::FastSplit, true, 20);
        let kind = DecisionKind::Admitted {
            path: DecisionPath::FastSplit,
            migrations: 0,
            inflation: Time::ZERO,
        };
        m.finish_decision(7, &kind, 35, &HotDeltas::default());
        let r = m.registry();
        assert_eq!(
            r.counter_by_name("spms_mech_stage_fast_whole_attempts_total"),
            Some(1)
        );
        assert_eq!(
            r.counter_by_name("spms_mech_stage_fast_whole_successes_total"),
            Some(0)
        );
        assert_eq!(
            r.counter_by_name("spms_mech_stage_fast_split_successes_total"),
            Some(1)
        );
        assert_eq!(m.decision_latency().count(), 1);
        let trace = m.traces().iter().next().unwrap();
        assert_eq!(trace.task, 7);
        assert_eq!(trace.label, "admitted_fast_split");
        assert_eq!(trace.spans.len(), 2);
        // The span scratch drained into the ring.
        assert!(m.open_spans.is_empty());
    }

    #[test]
    fn rebalance_ticks_distinguish_noop_from_productive() {
        let mut m = EngineMetrics::new(0);
        m.record_rebalance_tick(0);
        m.record_rebalance_tick(3);
        let r = m.registry();
        assert_eq!(
            r.counter_by_name("spms_mech_rebalance_ticks_total"),
            Some(2)
        );
        assert_eq!(
            r.counter_by_name("spms_mech_rebalance_moves_total"),
            Some(3)
        );
        assert_eq!(r.gauge_by_name("spms_mech_rebalance_last_moves"), Some(3));
        let history: Vec<_> = m.rebalance_history().copied().collect();
        assert_eq!(
            history,
            vec![
                RebalanceTick { seq: 0, moves: 0 },
                RebalanceTick { seq: 1, moves: 3 }
            ]
        );
    }

    #[test]
    fn rebalance_history_is_bounded() {
        let mut m = EngineMetrics::new(0);
        for tick in 0..(REBALANCE_HISTORY_CAPACITY as u64 + 10) {
            m.record_rebalance_tick(tick % 2);
        }
        assert_eq!(m.rebalance_history().count(), REBALANCE_HISTORY_CAPACITY);
        assert_eq!(m.rebalance_history().next().unwrap().seq, 10);
    }
}
