//! The online admission controller.
//!
//! [`AdmissionController`] consumes a stream of [`WorkloadEvent`]s and
//! maintains a live, always-schedulable [`Partition`]. Each arrival is
//! decided by a cascade of increasingly expensive strategies:
//!
//! 1. **fast path** — incremental first-fit placement of the whole task
//!    ([`IncrementalPlacer::plan_whole`]), validated by the same per-core
//!    acceptance test the offline algorithms use;
//! 2. **fast split** — FP-TS-style splitting of the arriving task across
//!    the residual capacity of several cores
//!    ([`IncrementalPlacer::plan_split`]);
//! 3. **bounded repair** — relocate (and re-split if necessary) at most
//!    [`max_repair_moves`](OnlineConfig::max_repair_moves) already-placed
//!    tasks to open a hole for the arrival, rolling back if no hole opens;
//! 4. **full repartition** — the last resort: run the offline
//!    [`SemiPartitionedFpTs`] over the admitted set plus the arrival and
//!    adopt its partition wholesale.
//!
//! A task is rejected only when every strategy fails; rejection leaves the
//! partition untouched. Departures free capacity immediately and can never
//! invalidate the partition (per-core demand only shrinks).
//!
//! Under the exact RTA test the live partition carries an incremental
//! analysis cache
//! ([`Partition::enable_analysis_cache`](spms_core::Partition::enable_analysis_cache)):
//! one [`CachedCoreAnalysis`](spms_analysis::CachedCoreAnalysis) per core
//! threads through all four stages — placement and split probes answer from
//! memoized response times (with warm starts carried *across* the split
//! planner's budget-search probes), and a full-repartition adoption
//! re-attaches a fresh cache. Speculative stages run inside the partition's
//! mutation journal ([`Partition::enable_journal`](spms_core::Partition::enable_journal)):
//! a failed repair attempt rewinds placements, priorities and cache state
//! in O(moves) instead of restoring a full-partition snapshot, so the
//! whole cascade is clone-free (`Partition::clone_count` proves it).
//! Decisions are bit-identical with the cache, journal and warm starts on
//! or off ([`OnlineConfig::use_rta_cache`], [`OnlineConfig::use_journal`],
//! [`OnlineConfig::probe_warm_start`]); only the latency changes. The one
//! *policy* knob is the repair victim ranking
//! ([`OnlineConfig::repair_ranking`], slack-guided by default).
//!
//! Every decision is recorded with its path, the number of already-placed
//! tasks it migrated, and (for rejections) a typed reason. The controller
//! also carries an [`EngineMetrics`] bundle (see [`crate::metrics`]):
//! outcome and cascade-stage counters in the deterministic registry
//! section, per-decision [`StageTrace`](spms_telemetry::StageTrace)s in a
//! bounded ring, and wall-clock latencies in bounded histograms in the
//! strippable timing section — never in any serializable result, so
//! reports stay byte-identical across runs.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use spms_analysis::{OverheadModel, UniprocessorTest};
use spms_core::{
    CoreId, IncrementalPlacer, Partition, PartitionOutcome, Partitioner, PlacementPlan, PlanTxn,
    Savepoint, SemiPartitionedFpTs, WholeProbe,
};
use spms_overhead::{CostModel, CostModelSpec};
use spms_task::{Task, TaskId, TaskSet, Time};
use spms_telemetry::{scoped, Histogram, HotCounter};

use crate::metrics::EngineMetrics;
use crate::WorkloadEvent;

/// Errors constructing an [`AdmissionController`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OnlineError {
    /// The platform must have at least one core.
    NoCores,
    /// A sharded service needs between 1 and `cores` shards.
    InvalidShardCount {
        /// The requested shard count.
        shards: usize,
        /// The platform's core count.
        cores: usize,
    },
}

impl fmt::Display for OnlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OnlineError::NoCores => write!(f, "online admission needs at least one core"),
            OnlineError::InvalidShardCount { shards, cores } => write!(
                f,
                "cannot shard {cores} cores into {shards} admission shards"
            ),
        }
    }
}

impl std::error::Error for OnlineError {}

/// Configuration of the online admission controller.
///
/// Construct via [`OnlineConfig::new`] (the defaults for a core count) or
/// [`OnlineConfig::builder`] to set individual knobs. The struct is
/// `#[non_exhaustive]`: fields are readable everywhere, but out-of-crate
/// construction must go through the builder so new knobs (like
/// [`cost_model`](Self::cost_model)) can be added without breaking callers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct OnlineConfig {
    /// Number of processor cores.
    pub cores: usize,
    /// Per-core acceptance test validating every placement.
    pub test: UniprocessorTest,
    /// Run-time overheads folded into each placement's analysis WCET.
    pub overhead: OverheadModel,
    /// Smallest body-subtask budget worth carving when splitting.
    pub min_split_budget: Time,
    /// Bound `k` on the number of already-placed tasks the repair pass may
    /// relocate for one arrival. `0` disables repair.
    pub max_repair_moves: usize,
    /// Whether a failed repair may fall back to a full offline repartition.
    pub allow_fallback: bool,
    /// Whether the live partition carries the incremental RTA cache
    /// (effective only with [`UniprocessorTest::ResponseTime`]). Decisions
    /// are bit-identical either way; disabling it exists for benchmarking
    /// the from-scratch analysis the cache replaces.
    pub use_rta_cache: bool,
    /// Whether repair/split rollback runs on the partition's mutation
    /// journal (`rewind` to a mark, O(moves)) instead of cloning the whole
    /// partition per attempt. Decisions are bit-identical either way;
    /// disabling it exists for benchmarking the clone-based rollback the
    /// journal replaces.
    pub use_journal: bool,
    /// Whether the split-budget binary search carries warm starts across
    /// its probes of one core (effective only with the RTA cache).
    /// Decisions are bit-identical either way; disabling it exists for
    /// benchmarking the cold probes the warm starts replace.
    pub probe_warm_start: bool,
    /// How the bounded-repair pass ranks eviction victims. This is a
    /// *policy* knob: the two rankings can make genuinely different (both
    /// sound) admit/reject decisions.
    pub repair_ranking: RepairRanking,
    /// What one migration costs a task in extra WCET. Every split hop,
    /// repair relocation and rebalance move must stay schedulable *after*
    /// the affected task's analysis WCET absorbs this charge. The default
    /// [`CostModelSpec::Zero`] charges nothing and reproduces the
    /// pre-cost-model decisions bit for bit.
    pub cost_model: CostModelSpec,
    /// Whether this controller's partition may host *partial* split chains
    /// — body/tail pieces whose siblings live on another shard, placed by
    /// the sharded service's cross-shard planner. Off (the default) the
    /// cascade is byte-identical to the walled-shard behaviour; on, the
    /// partition validates boundary pieces with shard-local chain rules and
    /// the full-repartition fallback is withheld while any remote piece is
    /// resident (a from-scratch repartition of one shard cannot re-place
    /// the remote siblings).
    pub cross_shard_split: bool,
    /// Graceful-degradation ladder: when set, per-arrival probe counts
    /// above the policy's budget shed the expensive cascade stages (full
    /// repartition first, then bounded repair), re-arming after a calm
    /// streak. `None` (the default) never sheds and reproduces the
    /// ladder-free decisions bit for bit.
    pub degrade: Option<DegradePolicy>,
}

/// Knobs of the graceful-degradation ladder.
///
/// The overload signal is the *probe count* of each arrival decision
/// (whole + split RTA probes, the cascade's unit of work) — an integer
/// that is a pure function of the decision stream, never wall-clock, so
/// the ladder's behaviour is deterministic across threads and machines.
/// An arrival that spends more than `probe_budget` probes escalates the
/// controller one degrade level (1 = the full-repartition fallback is
/// withheld, 2 = bounded repair is withheld too); `hysteresis`
/// consecutive within-budget arrivals walk it back one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DegradePolicy {
    /// Probes one arrival decision may spend before the controller
    /// escalates one degrade level.
    pub probe_budget: u64,
    /// Consecutive within-budget arrivals required to recover one level.
    pub hysteresis: u32,
}

impl Default for DegradePolicy {
    fn default() -> Self {
        DegradePolicy {
            probe_budget: 512,
            hysteresis: 8,
        }
    }
}

/// Victim-ranking policy of the bounded-repair pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RepairRanking {
    /// Slack-guided (the default): localize the blocker — the task whose
    /// `deadline − response` slack goes negative with the arrival added —
    /// then evict the smallest task whose removal provably unblocks the
    /// arrival (exact what-if probes, candidates that cannot relieve the
    /// blocker pruned). Split chains are movable (chain-aware relocation).
    /// Falls back to freeing the most capacity per move when no single
    /// eviction opens the hole.
    #[default]
    Slack,
    /// Largest utilization first (PR 3 behaviour): free the most capacity
    /// per move, never touching split chains.
    Utilization,
}

impl fmt::Display for RepairRanking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairRanking::Slack => write!(f, "slack"),
            RepairRanking::Utilization => write!(f, "utilization"),
        }
    }
}

impl Default for OnlineConfig {
    fn default() -> Self {
        OnlineConfig {
            cores: 4,
            test: UniprocessorTest::ResponseTime,
            overhead: OverheadModel::zero(),
            min_split_budget: Time::from_micros(100),
            max_repair_moves: 2,
            allow_fallback: true,
            use_rta_cache: true,
            use_journal: true,
            probe_warm_start: true,
            repair_ranking: RepairRanking::Slack,
            cost_model: CostModelSpec::Zero,
            cross_shard_split: false,
            degrade: None,
        }
    }
}

impl OnlineConfig {
    /// A configuration for `cores` processors with exact RTA, no overhead,
    /// repair bound 2, free migrations and the full-repartition fallback
    /// enabled. Shorthand for `OnlineConfig::builder().cores(cores).build()`.
    pub fn new(cores: usize) -> Self {
        OnlineConfig {
            cores,
            ..OnlineConfig::default()
        }
    }

    /// Starts a builder from the defaults. The builder is the one way to
    /// set knobs: `OnlineConfig::builder().cores(8).cost_model(...).build()`.
    pub fn builder() -> OnlineConfigBuilder {
        OnlineConfigBuilder {
            config: OnlineConfig::default(),
        }
    }

    /// Replaces the acceptance test (builder style).
    #[deprecated(note = "use OnlineConfig::builder().test(..)")]
    pub fn with_test(mut self, test: UniprocessorTest) -> Self {
        self.test = test;
        self
    }

    /// Replaces the overhead model (builder style).
    #[deprecated(note = "use OnlineConfig::builder().overhead(..)")]
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the repair bound `k` (builder style).
    #[deprecated(note = "use OnlineConfig::builder().max_repair_moves(..)")]
    pub fn with_max_repair_moves(mut self, k: usize) -> Self {
        self.max_repair_moves = k;
        self
    }

    /// Enables or disables the full-repartition fallback (builder style).
    #[deprecated(note = "use OnlineConfig::builder().fallback(..)")]
    pub fn with_fallback(mut self, allow: bool) -> Self {
        self.allow_fallback = allow;
        self
    }

    /// Sets the smallest admissible body-subtask budget (builder style).
    #[deprecated(note = "use OnlineConfig::builder().min_split_budget(..)")]
    pub fn with_min_split_budget(mut self, budget: Time) -> Self {
        self.min_split_budget = budget;
        self
    }

    /// Enables or disables the incremental RTA cache (builder style).
    #[deprecated(note = "use OnlineConfig::builder().rta_cache(..)")]
    pub fn with_rta_cache(mut self, enabled: bool) -> Self {
        self.use_rta_cache = enabled;
        self
    }

    /// Enables or disables journal-based rollback (builder style).
    #[deprecated(note = "use OnlineConfig::builder().journal(..)")]
    pub fn with_journal(mut self, enabled: bool) -> Self {
        self.use_journal = enabled;
        self
    }

    /// Enables or disables cross-probe warm starts (builder style).
    #[deprecated(note = "use OnlineConfig::builder().probe_warm_start(..)")]
    pub fn with_probe_warm_start(mut self, enabled: bool) -> Self {
        self.probe_warm_start = enabled;
        self
    }

    /// Sets the repair victim-ranking policy (builder style).
    #[deprecated(note = "use OnlineConfig::builder().repair_ranking(..)")]
    pub fn with_repair_ranking(mut self, ranking: RepairRanking) -> Self {
        self.repair_ranking = ranking;
        self
    }
}

/// Builder for [`OnlineConfig`]. Obtained from [`OnlineConfig::builder`];
/// every method replaces one knob and [`build`](Self::build) yields the
/// finished configuration (core-count validation stays where it always
/// was, in [`AdmissionController::new`]).
#[derive(Debug, Clone)]
pub struct OnlineConfigBuilder {
    config: OnlineConfig,
}

impl OnlineConfigBuilder {
    /// Sets the number of processor cores.
    pub fn cores(mut self, cores: usize) -> Self {
        self.config.cores = cores;
        self
    }

    /// Replaces the per-core acceptance test.
    pub fn test(mut self, test: UniprocessorTest) -> Self {
        self.config.test = test;
        self
    }

    /// Replaces the run-time overhead model.
    pub fn overhead(mut self, overhead: OverheadModel) -> Self {
        self.config.overhead = overhead;
        self
    }

    /// Sets the smallest admissible body-subtask budget.
    pub fn min_split_budget(mut self, budget: Time) -> Self {
        self.config.min_split_budget = budget;
        self
    }

    /// Sets the repair bound `k` (`0` disables repair).
    pub fn max_repair_moves(mut self, k: usize) -> Self {
        self.config.max_repair_moves = k;
        self
    }

    /// Enables or disables the full-repartition fallback.
    pub fn fallback(mut self, allow: bool) -> Self {
        self.config.allow_fallback = allow;
        self
    }

    /// Enables or disables the incremental RTA cache.
    pub fn rta_cache(mut self, enabled: bool) -> Self {
        self.config.use_rta_cache = enabled;
        self
    }

    /// Enables or disables journal-based rollback.
    pub fn journal(mut self, enabled: bool) -> Self {
        self.config.use_journal = enabled;
        self
    }

    /// Enables or disables cross-probe warm starts.
    pub fn probe_warm_start(mut self, enabled: bool) -> Self {
        self.config.probe_warm_start = enabled;
        self
    }

    /// Sets the repair victim-ranking policy.
    pub fn repair_ranking(mut self, ranking: RepairRanking) -> Self {
        self.config.repair_ranking = ranking;
        self
    }

    /// Sets the migration cost model charged by every split, relocation
    /// and rebalance move.
    pub fn cost_model(mut self, model: CostModelSpec) -> Self {
        self.config.cost_model = model;
        self
    }

    /// Allows partial split chains on this controller's partition so the
    /// sharded service's cross-shard planner can place boundary pieces.
    pub fn cross_shard_split(mut self, enabled: bool) -> Self {
        self.config.cross_shard_split = enabled;
        self
    }

    /// Installs (or removes) the graceful-degradation ladder.
    pub fn degrade(mut self, policy: Option<DegradePolicy>) -> Self {
        self.config.degrade = policy;
        self
    }

    /// Finishes the configuration.
    pub fn build(self) -> OnlineConfig {
        self.config
    }
}

/// Which strategy admitted a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DecisionPath {
    /// Incremental first-fit placed the task whole.
    FastWhole,
    /// The arriving task was split across the residual capacity.
    FastSplit,
    /// Up to `k` already-placed tasks were relocated to open a hole.
    Repair,
    /// The offline algorithm repartitioned the whole admitted set.
    FullRepartition,
    /// The sharded service split the task across two shards: the body on
    /// the highest-spare donor, the tail on the runner-up receiver. Never
    /// produced by a solo controller's cascade.
    CrossShardSplit,
}

impl fmt::Display for DecisionPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DecisionPath::FastWhole => "fast-whole",
            DecisionPath::FastSplit => "fast-split",
            DecisionPath::Repair => "repair",
            DecisionPath::FullRepartition => "full-repartition",
            DecisionPath::CrossShardSplit => "cross-shard-split",
        };
        write!(f, "{name}")
    }
}

/// Why an arrival was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum RejectionReason {
    /// A task with the same id is already admitted.
    DuplicateTask,
    /// Total utilization would exceed the platform capacity `m`.
    PlatformOverloaded,
    /// The task cannot absorb the scheduling overhead within its deadline on
    /// any core.
    OverheadUnabsorbable,
    /// Every strategy — placement, splitting, repair and (if enabled) full
    /// repartitioning — failed to find a schedulable configuration.
    NoFeasiblePlacement,
}

impl fmt::Display for RejectionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            RejectionReason::DuplicateTask => "duplicate task id",
            RejectionReason::PlatformOverloaded => "platform utilization exceeded",
            RejectionReason::OverheadUnabsorbable => "overhead unabsorbable within deadline",
            RejectionReason::NoFeasiblePlacement => "no feasible placement",
        };
        write!(f, "{name}")
    }
}

/// The outcome of one event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// The arrival was admitted.
    Admitted {
        /// The strategy that placed it.
        path: DecisionPath,
        /// How many *already-placed* tasks this decision relocated (0 on the
        /// fast paths).
        migrations: usize,
        /// Total extra WCET the cost model charged across every placement
        /// this decision inflated (split hops of the arrival, relocated
        /// repair victims). Zero under [`CostModelSpec::Zero`] and on the
        /// fast-whole and fallback paths.
        inflation: Time,
    },
    /// The arrival was rejected; the partition is unchanged.
    Rejected {
        /// Why.
        reason: RejectionReason,
    },
    /// An admitted task departed and its capacity was released.
    Departed,
    /// A departure for a task that was never admitted (no-op).
    DepartUnknown,
    /// A lease renewal was noted (no-op for the partition). Leases are
    /// interpreted by the [`EventLoop`](crate::EventLoop); a controller
    /// replaying a leased trace only acknowledges the event.
    RenewNoted,
    /// A resident task drained off a crashed shard could not be re-placed
    /// on any survivor (whole, split, or via the cross-shard planner) and
    /// was evicted. Only shard-failure recovery produces this; it never
    /// appears in a fault-free run.
    EvictedOnFailure,
}

// Hand-rolled (de)serialization so zero charges stay invisible: a ZeroCost
// decision log must stay byte-identical to the pre-cost-model format (the
// derive would emit `"inflation":0` into every admission). The encoding
// otherwise matches the derive exactly — unit variants as strings, data
// variants as single-key maps — and old logs without the entry read back
// with [`Time::ZERO`].
impl Serialize for DecisionKind {
    fn to_value(&self) -> serde::Value {
        use serde::Value;
        match self {
            DecisionKind::Admitted {
                path,
                migrations,
                inflation,
            } => {
                let mut fields = vec![
                    (String::from("path"), path.to_value()),
                    (String::from("migrations"), migrations.to_value()),
                ];
                if !inflation.is_zero() {
                    fields.push((String::from("inflation"), inflation.to_value()));
                }
                Value::Map(vec![(String::from("Admitted"), Value::Map(fields))])
            }
            DecisionKind::Rejected { reason } => Value::Map(vec![(
                String::from("Rejected"),
                Value::Map(vec![(String::from("reason"), reason.to_value())]),
            )]),
            DecisionKind::Departed => Value::Str(String::from("Departed")),
            DecisionKind::DepartUnknown => Value::Str(String::from("DepartUnknown")),
            DecisionKind::RenewNoted => Value::Str(String::from("RenewNoted")),
            DecisionKind::EvictedOnFailure => Value::Str(String::from("EvictedOnFailure")),
        }
    }
}

impl Deserialize for DecisionKind {
    fn from_value(value: &serde::Value) -> Result<Self, serde::Error> {
        use serde::Value;
        match value {
            Value::Str(name) => match name.as_str() {
                "Departed" => Ok(DecisionKind::Departed),
                "DepartUnknown" => Ok(DecisionKind::DepartUnknown),
                "RenewNoted" => Ok(DecisionKind::RenewNoted),
                "EvictedOnFailure" => Ok(DecisionKind::EvictedOnFailure),
                other => Err(serde::Error::custom(format!(
                    "unknown variant `{other}` of DecisionKind"
                ))),
            },
            Value::Map(entries) if entries.len() == 1 => {
                let (tag, payload) = &entries[0];
                match tag.as_str() {
                    "Admitted" => Ok(DecisionKind::Admitted {
                        path: Deserialize::from_value(payload.field("path")?)?,
                        migrations: Deserialize::from_value(payload.field("migrations")?)?,
                        inflation: match payload.field("inflation")? {
                            Value::Null => Time::ZERO,
                            present => Deserialize::from_value(present)?,
                        },
                    }),
                    "Rejected" => Ok(DecisionKind::Rejected {
                        reason: Deserialize::from_value(payload.field("reason")?)?,
                    }),
                    other => Err(serde::Error::custom(format!(
                        "unknown variant `{other}` of DecisionKind"
                    ))),
                }
            }
            other => Err(serde::Error::custom(format!(
                "expected DecisionKind representation, found {}",
                other.kind()
            ))),
        }
    }
}

/// One entry of the controller's decision log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decision {
    /// Index of the event in the stream, starting at 0.
    pub event_index: usize,
    /// The task the event concerned.
    pub task: TaskId,
    /// What the controller decided.
    pub kind: DecisionKind,
}

impl Decision {
    /// Whether this decision admitted a task.
    pub fn is_admission(&self) -> bool {
        matches!(self.kind, DecisionKind::Admitted { .. })
    }

    /// Whether this decision changed the partition.
    pub fn changed_partition(&self) -> bool {
        matches!(
            self.kind,
            DecisionKind::Admitted { .. } | DecisionKind::Departed
        )
    }
}

/// Aggregate counters over a controller's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerStats {
    /// Arrival events seen.
    pub arrivals: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Departures of admitted tasks.
    pub departures: u64,
    /// Departures of unknown tasks (no-ops).
    pub unknown_departures: u64,
    /// Admissions via incremental whole placement.
    pub fast_whole: u64,
    /// Admissions via splitting the arriving task.
    pub fast_split: u64,
    /// Admissions via bounded repair.
    pub repairs: u64,
    /// Admissions via full offline repartitioning.
    pub full_repartitions: u64,
    /// Already-placed tasks relocated across all decisions.
    pub migrations_caused: u64,
    /// Total WCET inflation (nanoseconds) the cost model charged across
    /// all admissions — the schedulable capacity spent on migration
    /// overhead rather than task execution. Zero under
    /// [`CostModelSpec::Zero`].
    pub inflation_charged_ns: u64,
}

impl ControllerStats {
    /// Fraction of arrivals admitted (1.0 when there were none).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.arrivals == 0 {
            1.0
        } else {
            self.admitted as f64 / self.arrivals as f64
        }
    }

    /// Fraction of admissions that took a fast path (1.0 when there were
    /// none).
    pub fn fast_path_ratio(&self) -> f64 {
        if self.admitted == 0 {
            1.0
        } else {
            (self.fast_whole + self.fast_split) as f64 / self.admitted as f64
        }
    }
}

/// The online admission controller. See the [module docs](self) for the
/// decision cascade.
#[derive(Debug, Clone)]
pub struct AdmissionController {
    config: OnlineConfig,
    placer: IncrementalPlacer,
    partition: Partition,
    admitted: BTreeMap<TaskId, Task>,
    /// Parents with at least one piece on *another* shard, placed by the
    /// sharded service's cross-shard planner. Their local pieces must never
    /// be relocated by repair and block the full-repartition fallback: both
    /// reason only about this shard's partition and would orphan the remote
    /// siblings. Always empty when `cross_shard_split` is off.
    remote_parents: BTreeSet<TaskId>,
    decisions: Vec<Decision>,
    metrics: EngineMetrics,
    stats: ControllerStats,
    next_event: usize,
    /// Current rung of the graceful-degradation ladder (0 = full cascade,
    /// 1 = full repartition withheld, 2 = bounded repair withheld too).
    /// Always 0 when [`OnlineConfig::degrade`] is `None`.
    degrade_level: u8,
    /// Consecutive within-budget arrivals since the last escalation —
    /// the hysteresis counter that walks the ladder back down.
    calm_streak: u32,
}

impl AdmissionController {
    /// Creates a controller over an empty partition.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::NoCores`] when the configuration has zero
    /// cores.
    pub fn new(config: OnlineConfig) -> Result<Self, OnlineError> {
        if config.cores == 0 {
            return Err(OnlineError::NoCores);
        }
        let placer = IncrementalPlacer::new()
            .with_test(config.test)
            .with_overhead(config.overhead)
            .with_min_split_budget(config.min_split_budget)
            .with_probe_warm_start(config.probe_warm_start);
        let mut partition = Partition::new(config.cores);
        // The cache pays off only under the exact RTA (the utilization
        // bounds are already O(n) per probe).
        if config.use_rta_cache && config.test == UniprocessorTest::ResponseTime {
            partition.enable_analysis_cache();
        }
        if config.use_journal {
            partition.enable_journal();
        }
        if config.cross_shard_split {
            partition.allow_partial_chains();
        }
        Ok(AdmissionController {
            partition,
            placer,
            config,
            admitted: BTreeMap::new(),
            remote_parents: BTreeSet::new(),
            decisions: Vec::new(),
            metrics: EngineMetrics::default(),
            stats: ControllerStats::default(),
            next_event: 0,
            degrade_level: 0,
            calm_streak: 0,
        })
    }

    /// The live partition of all admitted tasks.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Whether a task with this id is currently admitted.
    pub fn is_admitted(&self, id: TaskId) -> bool {
        self.admitted.contains_key(&id)
    }

    /// The admitted copy (original parameters) of one task, if present.
    pub fn admitted_task(&self, id: TaskId) -> Option<&Task> {
        self.admitted.get(&id)
    }

    /// The controller configuration.
    pub fn config(&self) -> &OnlineConfig {
        &self.config
    }

    /// The currently admitted tasks with their original parameters.
    pub fn admitted_tasks(&self) -> TaskSet {
        self.admitted.values().cloned().collect()
    }

    /// Number of currently admitted tasks.
    pub fn admitted_count(&self) -> usize {
        self.admitted.len()
    }

    /// Total utilization of the admitted tasks (original parameters, not
    /// overhead-inflated).
    pub fn admitted_utilization(&self) -> f64 {
        self.admitted.values().map(Task::utilization).sum()
    }

    /// The decision log, one entry per handled event.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &ControllerStats {
        &self.stats
    }

    /// This controller's telemetry: the metrics registry, the bounded
    /// stage-trace ring, and the rebalance history (unused by a solo
    /// controller). See [`crate::metrics`] for the determinism contract.
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Mutable telemetry access (drivers use it to set throughput gauges).
    pub fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    /// Wall-clock decision latencies as a bounded histogram (the timing
    /// section of the registry — one sample per handled event). Never
    /// serialized into reports: latencies vary run-to-run, and every
    /// serializable report must stay deterministic.
    pub fn decision_latency_histogram(&self) -> &Histogram {
        self.metrics.decision_latency()
    }

    /// Handles one workload event and returns the decision made.
    pub fn handle(&mut self, event: WorkloadEvent) -> Decision {
        self.handle_event(&event)
    }

    /// [`handle`](Self::handle) by reference: nothing is cloned unless the
    /// arrival is actually admitted (the admitted map keeps its own copy of
    /// the task).
    pub fn handle_event(&mut self, event: &WorkloadEvent) -> Decision {
        let started = Instant::now();
        let hot = scoped::thread_snapshot();
        let task_id = event.task_id();
        let kind = match event {
            WorkloadEvent::Arrive(task) => self.arrive(task),
            WorkloadEvent::Depart(id) => self.depart(*id),
            // Leases are the event loop's concern; a controller fed a
            // leased trace just acknowledges the renewal.
            WorkloadEvent::Renew(_) => DecisionKind::RenewNoted,
        };
        let decision = Decision {
            event_index: self.next_event,
            task: task_id,
            kind,
        };
        self.next_event += 1;
        self.decisions.push(decision);
        let deltas = hot.since();
        // Only arrivals drive the degrade ladder: their probe count is the
        // cascade's unit of work, while departures and renewals are cheap
        // bookkeeping that says nothing about admission pressure.
        if matches!(event, WorkloadEvent::Arrive(_)) {
            let probes = deltas.get(HotCounter::WholeProbes) + deltas.get(HotCounter::SplitProbes);
            self.update_degrade(probes);
        }
        self.metrics.finish_decision(
            u64::from(task_id.0),
            &kind,
            started.elapsed().as_nanos() as u64,
            &deltas,
        );
        debug_assert_eq!(self.partition.validate(), Ok(()));
        decision
    }

    /// Current rung of the graceful-degradation ladder (0 when no
    /// [`DegradePolicy`] is configured).
    pub fn degrade_level(&self) -> u8 {
        self.degrade_level
    }

    /// One ladder update after an arrival that spent `probes` RTA probes:
    /// over budget escalates a rung (and resets the calm streak), a
    /// within-budget arrival extends the streak and recovers a rung after
    /// `hysteresis` consecutive calm arrivals.
    fn update_degrade(&mut self, probes: u64) {
        let Some(policy) = self.config.degrade else {
            return;
        };
        if probes > policy.probe_budget {
            self.calm_streak = 0;
            if self.degrade_level < 2 {
                self.degrade_level += 1;
                self.metrics
                    .record_degrade_transition(u64::from(self.degrade_level), true);
            }
        } else if self.degrade_level > 0 {
            self.calm_streak += 1;
            if self.calm_streak >= policy.hysteresis {
                self.calm_streak = 0;
                self.degrade_level -= 1;
                self.metrics
                    .record_degrade_transition(u64::from(self.degrade_level), false);
            }
        }
    }

    /// Handles a whole event stream, returning the per-event decisions.
    /// Events are consumed by reference — no per-event clones.
    pub fn handle_all(&mut self, events: &[WorkloadEvent]) -> Vec<Decision> {
        events.iter().map(|e| self.handle_event(e)).collect()
    }

    // ------------------------------------------------------------------
    // arrivals
    // ------------------------------------------------------------------

    fn arrive(&mut self, task: &Task) -> DecisionKind {
        self.stats.arrivals += 1;
        if self.admitted.contains_key(&task.id()) {
            return self.reject(RejectionReason::DuplicateTask);
        }
        // Cheap necessary condition before any RTA runs: total utilization
        // can never exceed the platform.
        if self.admitted_utilization() + task.utilization() > self.config.cores as f64 + 1e-9 {
            return self.reject(RejectionReason::PlatformOverloaded);
        }
        if self.placer.whole_analysis_task(task).is_none() {
            return self.reject(RejectionReason::OverheadUnabsorbable);
        }

        // Each cascade stage runs under a timer; `record_stage` counts the
        // attempt/success (mechanism section), records the stage latency
        // (timing section), and appends a span to this decision's trace.
        // A whole placement crosses no core boundary at run time, so the
        // fast-whole path is charge-free under every cost model.
        let stage = Instant::now();
        if let Some(plan) = self.placer.plan_whole(&self.partition, task, &[]) {
            self.placer.commit(&mut self.partition, task, plan);
            self.record_stage(DecisionPath::FastWhole, true, stage);
            self.stats.fast_whole += 1;
            return self.admit(task, DecisionPath::FastWhole, 0, Time::ZERO);
        }
        self.record_stage(DecisionPath::FastWhole, false, stage);
        // A split chain hops one core boundary per piece after the first,
        // every job: each later piece's analysis WCET absorbs one charge,
        // and the split is admitted only if it stays schedulable inflated.
        let stage = Instant::now();
        let charge = self.migration_charge(task);
        if let Some(plan) = self
            .placer
            .plan_split_charged(&self.partition, task, &[], charge)
        {
            let inflation = plan_inflation(&plan, charge);
            self.placer.commit(&mut self.partition, task, plan);
            self.record_stage(DecisionPath::FastSplit, true, stage);
            self.stats.fast_split += 1;
            return self.admit(task, DecisionPath::FastSplit, 0, inflation);
        }
        self.record_stage(DecisionPath::FastSplit, false, stage);
        // The degrade ladder sheds the expensive stages under sustained
        // overload: level ≥ 2 withholds bounded repair, level ≥ 1 the
        // full-repartition fallback. Shed stages never run, so they count
        // on the shed counter, not as stage attempts.
        if self.degrade_level < 2 {
            let stage = Instant::now();
            let repaired = self.try_repair(task);
            self.record_stage(DecisionPath::Repair, repaired.is_some(), stage);
            if let Some((moves, inflation)) = repaired {
                self.stats.repairs += 1;
                return self.admit(task, DecisionPath::Repair, moves, inflation);
            }
        } else {
            self.metrics.record_degrade_shed_stage();
        }
        // The fallback adopts a from-scratch offline partition; its moves
        // are a one-time reshuffle, not recurring per-job hops, so they are
        // deliberately uncharged (see the module docs).
        if self.degrade_level < 1 {
            let stage = Instant::now();
            let fallback = self.try_fallback(task);
            self.record_stage(DecisionPath::FullRepartition, fallback.is_some(), stage);
            if let Some(moves) = fallback {
                self.stats.full_repartitions += 1;
                return self.admit(task, DecisionPath::FullRepartition, moves, Time::ZERO);
            }
        } else {
            self.metrics.record_degrade_shed_stage();
        }
        self.reject(RejectionReason::NoFeasiblePlacement)
    }

    /// The per-migration WCET charge of `task` under the configured cost
    /// model. Always computed from the task's pristine parameters, so
    /// repeated relocations never compound charges.
    fn migration_charge(&self, task: &Task) -> Time {
        self.config.cost_model.migration_charge(task)
    }

    /// Closes one cascade stage's telemetry: attempt/success counters, the
    /// stage latency histogram, and a span in the open decision's trace.
    /// Stages short-circuited by their own config knob (`max_repair_moves
    /// == 0`, `allow_fallback == false`) still count as reached-and-failed
    /// attempts — the count stays deterministic per configuration.
    fn record_stage(&mut self, stage: DecisionPath, success: bool, started: Instant) {
        self.metrics
            .record_stage(stage, success, started.elapsed().as_nanos() as u64);
    }

    fn admit(
        &mut self,
        task: &Task,
        path: DecisionPath,
        migrations: usize,
        inflation: Time,
    ) -> DecisionKind {
        self.stats.admitted += 1;
        self.stats.migrations_caused += migrations as u64;
        self.stats.inflation_charged_ns = self
            .stats
            .inflation_charged_ns
            .saturating_add(inflation.as_nanos());
        self.admitted.insert(task.id(), task.clone());
        DecisionKind::Admitted {
            path,
            migrations,
            inflation,
        }
    }

    fn reject(&mut self, reason: RejectionReason) -> DecisionKind {
        self.stats.rejected += 1;
        DecisionKind::Rejected { reason }
    }

    // ------------------------------------------------------------------
    // bounded repair
    // ------------------------------------------------------------------

    /// Tries to open a hole for `task` on some core by relocating at most
    /// `k` already-placed tasks (whole-first, re-split if needed). Restores
    /// the partition whenever a target core cannot be freed — by rewinding
    /// the mutation journal ([`OnlineConfig::use_journal`], O(moves)) or by
    /// restoring a snapshot clone (O(tasks), kept for benchmarking).
    /// Returns the number of tasks moved and the total WCET inflation the
    /// cost model charged to the relocated victims on success.
    fn try_repair(&mut self, task: &Task) -> Option<(usize, Time)> {
        if self.config.max_repair_moves == 0 {
            return None;
        }
        for target in self.repair_target_order(task) {
            let rollback = self.begin_rollback();
            match self.repair_on(target, task) {
                Some(outcome) => {
                    self.commit_rollback(rollback);
                    return Some(outcome);
                }
                None => self.abort_rollback(rollback),
            }
        }
        None
    }

    /// Candidate repair targets, most repairable first, instead of raw
    /// index order: cores where [`probe_whole`](IncrementalPlacer::probe_whole)
    /// localizes a concrete blocker (so the victim search has something to
    /// aim at) come before cores where it cannot, and within each group the
    /// arrival's *deficit* — how far over capacity the core would go with
    /// the arrival added (`U(core) + u(arrival) − 1`) — ranks ascending:
    /// the core needing the least utilization shed is tried first, so the
    /// common case commits on the first attempt and rejected-target rewinds
    /// drop. Ties break on core index, keeping the order deterministic and
    /// independent of every pure-mechanism knob (cache / journal / warm
    /// probes).
    fn repair_target_order(&self, task: &Task) -> Vec<CoreId> {
        let utilizations = self.partition.core_utilizations();
        let mut scored: Vec<(bool, f64, usize)> = (0..self.config.cores)
            .map(|idx| {
                let localized = match self.placer.probe_whole(&self.partition, CoreId(idx), task) {
                    // Unreachable in practice: repair runs after first-fit
                    // failed on every core. Rank it first defensively.
                    WholeProbe::Accepted => true,
                    WholeProbe::Blocked { blocker } => blocker.is_some(),
                };
                let deficit = utilizations[idx] + task.utilization() - 1.0;
                (!localized, deficit, idx)
            })
            .collect();
        scored.sort_by(|a, b| {
            a.0.cmp(&b.0)
                .then_with(|| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                .then_with(|| a.2.cmp(&b.2))
        });
        scored.into_iter().map(|(_, _, idx)| CoreId(idx)).collect()
    }

    /// One repair attempt against a fixed `target` core. Mutates the
    /// partition freely; the caller rolls back on `None`. Returns the
    /// number of relocations and their accumulated WCET inflation.
    fn repair_on(&mut self, target: CoreId, task: &Task) -> Option<(usize, Time)> {
        let k = self.config.max_repair_moves;
        let others: Vec<CoreId> = (0..self.config.cores)
            .map(CoreId)
            .filter(|c| *c != target)
            .collect();
        let mut moves = 0usize;
        let mut inflation = Time::ZERO;
        let mut immovable: Vec<TaskId> = Vec::new();
        loop {
            // The arrival itself lands whole on the opened core — a fresh
            // placement crossing no boundary, so it stays uncharged.
            if let Some(plan) = self.placer.plan_whole(&self.partition, task, &others) {
                self.placer.commit(&mut self.partition, task, plan);
                return Some((moves, inflation));
            }
            if moves == k {
                return None;
            }
            let victim = self.pick_victim(target, task, &immovable)?;
            match self.relocate(victim, target) {
                Some(added) => {
                    moves += 1;
                    inflation += added;
                }
                None => immovable.push(victim),
            }
        }
    }

    /// The next task worth evicting from `target` under the configured
    /// ranking policy.
    fn pick_victim(&self, target: CoreId, arrival: &Task, immovable: &[TaskId]) -> Option<TaskId> {
        match self.config.repair_ranking {
            RepairRanking::Utilization => self.pick_victim_by_utilization(target, immovable),
            RepairRanking::Slack => self.pick_victim_by_slack(target, arrival, immovable),
        }
    }

    /// Largest utilization first (freeing the most capacity per move), ties
    /// broken by id for determinism. Split parents are never victims here —
    /// the historical PR 3 policy. Parents with remote pieces are never
    /// victims either: relocating the local piece would orphan siblings on
    /// other shards.
    fn pick_victim_by_utilization(&self, target: CoreId, immovable: &[TaskId]) -> Option<TaskId> {
        let mut candidates: Vec<(f64, TaskId)> = self
            .partition
            .core(target)
            .iter()
            .filter(|p| {
                !p.is_split()
                    && !immovable.contains(&p.parent)
                    && !self.remote_parents.contains(&p.parent)
            })
            .map(|p| (p.task.utilization(), p.parent))
            .collect();
        candidates.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.1.cmp(&b.1))
        });
        candidates.first().map(|(_, id)| *id)
    }

    /// Slack-guided victim choice: localize the blocker (the task whose
    /// `deadline − response` slack goes negative with the arrival added),
    /// prune candidates that provably cannot relieve it, then evict the
    /// *smallest* task whose removal an exact what-if probe confirms to
    /// unblock the arrival. Split parents are candidates too (chain-aware
    /// relocation: evicting one piece relocates the whole chain). When no
    /// single eviction opens the hole, falls back to freeing the most
    /// capacity per move so multi-move repair still progresses.
    fn pick_victim_by_slack(
        &self,
        target: CoreId,
        arrival: &Task,
        immovable: &[TaskId],
    ) -> Option<TaskId> {
        let candidates: Vec<(f64, TaskId)> = {
            let mut c: Vec<(f64, TaskId)> = self
                .partition
                .core(target)
                .iter()
                .filter(|p| {
                    !immovable.contains(&p.parent) && !self.remote_parents.contains(&p.parent)
                })
                .map(|p| (p.task.utilization(), p.parent))
                .collect();
            c.sort_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| a.1.cmp(&b.1))
            });
            c
        };
        let blocker = match self.placer.probe_whole(&self.partition, target, arrival) {
            WholeProbe::Accepted => None, // unreachable in practice: repair runs after rejection
            WholeProbe::Blocked { blocker } => blocker,
        };
        // Pass 1: smallest candidate whose eviction provably unblocks the
        // arrival. Candidates ranked strictly below the blocker cannot
        // relieve it and are pruned without probing.
        for &(_, id) in &candidates {
            if let Some(blocker_id) = blocker {
                if id != blocker_id && !self.interferes_with(target, id, blocker_id, arrival) {
                    continue;
                }
            }
            if self
                .placer
                .accepts_whole_without(&self.partition, target, arrival, id)
            {
                return Some(id);
            }
        }
        // Pass 2: no single eviction opens the hole — free the most
        // capacity per move; equal-utilization ties go to the task with
        // the smallest slack (relocating the most squeezed task relieves
        // the core's tightest constraint), then to the smallest id.
        candidates
            .iter()
            .map(|&(utilization, id)| (utilization, self.slack_on(target, id), id))
            .max_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then_with(|| b.1.cmp(&a.1))
                    .then_with(|| b.2.cmp(&a.2))
            })
            .map(|(_, _, id)| id)
    }

    /// The slack (`deadline − response`) of `parent`'s placement on
    /// `core`: read from the attached cache when converged
    /// ([`CachedCoreAnalysis::slack_of`](spms_analysis::CachedCoreAnalysis::slack_of),
    /// free), recomputed from scratch otherwise — bit-identical either
    /// way, so cached and uncached controllers rank victims identically.
    /// A provably missed deadline counts as zero slack (most squeezed).
    fn slack_on(&self, core: CoreId, parent: TaskId) -> Time {
        if let Some(cache) = self.partition.cached_core(core) {
            return cache.slack_of(parent).flatten().unwrap_or(Time::ZERO);
        }
        let tasks = self.partition.core_tasks(core);
        let analysis = spms_analysis::rta::analyse_core(&tasks);
        tasks
            .iter()
            .zip(&analysis.response_times)
            .find(|(t, _)| t.id() == parent)
            .and_then(|(t, response)| response.map(|r| t.deadline().saturating_sub(r)))
            .unwrap_or(Time::ZERO)
    }

    /// Whether `victim`'s placement on `target` interferes with `blocker`
    /// there — i.e. runs at higher-or-equal effective priority, so its
    /// eviction actually removes interference from the blocker. The blocker
    /// may be the (unplaced) arrival itself, which ranks by the same
    /// deadline-monotonic key the commit-time renormalization uses.
    fn interferes_with(
        &self,
        target: CoreId,
        victim: TaskId,
        blocker: TaskId,
        arrival: &Task,
    ) -> bool {
        let bin = self.partition.core(target);
        let Some(victim_placed) = bin.iter().find(|p| p.parent == victim) else {
            return false;
        };
        if blocker == arrival.id() {
            // Promoted split pieces outrank every whole task; whole victims
            // interfere with the arrival when their DM key ranks at or
            // above the arrival's (the same commit-time ranking rule the
            // placer's probes use).
            if victim_placed.is_split() {
                return true;
            }
            return spms_core::whole_outranks_or_ties(&victim_placed.task, arrival);
        }
        let Some(blocker_placed) = bin.iter().find(|p| p.parent == blocker) else {
            // Blocker not on this core (cannot happen for a target probe):
            // do not prune.
            return true;
        };
        let level =
            |placed: &spms_core::PlacedTask| placed.task.priority().map_or(u32::MAX, |p| p.level());
        level(victim_placed) <= level(blocker_placed)
    }

    /// Moves `victim` off `target`, whole-first-fit over the other cores and
    /// re-splitting it across them if it fits nowhere whole. The victim is
    /// re-planned from its *pristine* admitted copy with one migration
    /// charge folded in (a relocated whole absorbs one charge; a re-split
    /// charges each later piece), so the move commits only if the inflated
    /// placement stays schedulable. Returns the inflation charged on
    /// success; on failure the partition is unchanged — via an inner
    /// journal mark, or an inner snapshot when the journal is disabled.
    fn relocate(&mut self, victim: TaskId, target: CoreId) -> Option<Time> {
        let original = self.admitted.get(&victim).cloned()?;
        let charge = self.migration_charge(&original);
        let inner = self.inner_rollback_point();
        self.partition.remove_parent(victim);
        if let Some(plan) = self
            .placer
            .plan_charged(&self.partition, &original, &[target], charge)
        {
            let inflation = plan_inflation(&plan, charge);
            self.placer.commit(&mut self.partition, &original, plan);
            Some(inflation)
        } else {
            self.restore_inner(inner);
            None
        }
    }

    // ------------------------------------------------------------------
    // rollback plumbing
    // ------------------------------------------------------------------
    //
    // Repair scopes run on the shared [`PlanTxn`] abstraction from
    // `spms-core` — the same transaction type the sharded service spans
    // across several partitions for cross-shard split planning. A solo
    // controller always opens single-scope transactions on its own
    // partition, which [`PlanTxn`] dispatches exactly as the old plumbing
    // did: a journal scope when the partition carries a mutation journal
    // (`use_journal`, which is precisely when the journal is attached in
    // [`new`](Self::new)), a snapshot clone otherwise.

    /// Opens a speculative scope around one repair attempt.
    fn begin_rollback(&mut self) -> PlanTxn {
        let mut txn = PlanTxn::new();
        txn.begin(&mut self.partition);
        txn
    }

    /// Keeps the speculative mutations (the attempt succeeded).
    fn commit_rollback(&mut self, txn: PlanTxn) {
        txn.commit(std::slice::from_mut(&mut &mut self.partition));
    }

    /// Discards the speculative mutations (the attempt failed).
    fn abort_rollback(&mut self, txn: PlanTxn) {
        txn.abort(std::slice::from_mut(&mut &mut self.partition));
    }

    /// A nested rollback point *inside* an open repair scope (one
    /// speculative relocation). With the journal this is just a mark — the
    /// outer scope keeps recording.
    fn inner_rollback_point(&mut self) -> Savepoint {
        Savepoint::capture(&self.partition)
    }

    /// Restores a nested rollback point without closing the outer scope.
    fn restore_inner(&mut self, inner: Savepoint) {
        inner.restore(&mut self.partition);
    }

    // ------------------------------------------------------------------
    // full repartition fallback
    // ------------------------------------------------------------------

    /// Runs the offline FP-TS algorithm over the admitted set plus `task`
    /// and adopts its partition if schedulable. Returns the number of
    /// already-admitted tasks whose placement changed.
    fn try_fallback(&mut self, task: &Task) -> Option<usize> {
        if !self.config.allow_fallback {
            return None;
        }
        // A from-scratch repartition of this shard cannot re-place pieces
        // whose siblings live on other shards: while any cross-shard parent
        // is resident the fallback is withheld (the admitted map holds only
        // the piece-shaped remote fragments, not the original tasks).
        if !self.remote_parents.is_empty() {
            return None;
        }
        let mut all = self.admitted_tasks();
        all.push(task.clone());
        let outcome = self
            .offline_partitioner()
            .partition(&all, self.config.cores);
        match outcome {
            Ok(PartitionOutcome::Schedulable(mut new)) => {
                let migrations = moved_parents(&self.partition, &new, task.id());
                // The offline pass ranks whole tasks by global rate-monotonic
                // levels; every later probe and commit assumes the per-core
                // deadline-monotonic discipline. Renormalize before adopting
                // so the stored priorities (and the cache snapshot below)
                // match what the placer's candidate ranking expects — for
                // constrained deadlines the two orders genuinely differ.
                // DM is optimal among fixed-priority assignments, so a
                // schedulable adoption stays schedulable.
                for core in 0..new.core_count() {
                    new.renormalize_core_priorities(CoreId(core));
                }
                // The adopted partition is a fresh object: re-attach the
                // incremental analysis cache and the mutation journal the
                // cascade threads through every later decision.
                if self.partition.analysis_cache_enabled() {
                    new.enable_analysis_cache();
                }
                if self.config.use_journal {
                    new.enable_journal();
                }
                if self.config.cross_shard_split {
                    new.allow_partial_chains();
                }
                self.partition = new;
                Some(migrations)
            }
            _ => None,
        }
    }

    /// The offline algorithm the fallback (and the no-over-admission
    /// property tests) use: FP-TS configured identically to the incremental
    /// placer.
    pub fn offline_partitioner(&self) -> SemiPartitionedFpTs {
        SemiPartitionedFpTs::default()
            .with_test(self.config.test)
            .with_overhead(self.config.overhead)
            .with_min_split_budget(self.config.min_split_budget)
    }

    // ------------------------------------------------------------------
    // departures
    // ------------------------------------------------------------------

    fn depart(&mut self, id: TaskId) -> DecisionKind {
        if self.admitted.remove(&id).is_none() {
            self.stats.unknown_departures += 1;
            return DecisionKind::DepartUnknown;
        }
        self.remote_parents.remove(&id);
        let removed = self.partition.remove_parent(id);
        debug_assert!(removed > 0, "admitted task {id} had no placements");
        self.stats.departures += 1;
        DecisionKind::Departed
    }
}

/// The controller *is* the production admission shard: one decision
/// cascade over one partition slice. See [`AdmissionShard`](crate::AdmissionShard)
/// for the bookkeeping contract of the rebalancer plumbing methods.
impl crate::AdmissionShard for AdmissionController {
    fn decide(&mut self, event: &WorkloadEvent) -> Decision {
        self.handle_event(event)
    }

    fn resident(&self, id: TaskId) -> bool {
        self.is_admitted(id)
    }

    fn admitted_utilization(&self) -> f64 {
        AdmissionController::admitted_utilization(self)
    }

    fn core_count(&self) -> usize {
        self.config.cores
    }

    fn partition(&self) -> &Partition {
        &self.partition
    }

    fn partition_mut(&mut self) -> &mut Partition {
        &mut self.partition
    }

    fn lookup_admitted(&self, id: TaskId) -> Option<Task> {
        self.admitted.get(&id).cloned()
    }

    fn forget_admitted(&mut self, id: TaskId) -> Option<Task> {
        self.admitted.remove(&id)
    }

    fn note_admitted(&mut self, task: Task) {
        self.admitted.insert(task.id(), task);
    }

    fn note_remote_admitted(&mut self, piece: Task) {
        self.remote_parents.insert(piece.id());
        self.admitted.insert(piece.id(), piece);
    }

    fn placer(&self) -> &IncrementalPlacer {
        &self.placer
    }

    fn cost_model(&self) -> CostModelSpec {
        self.config.cost_model.clone()
    }

    fn metrics_registry(&self) -> Option<&spms_telemetry::Registry> {
        Some(self.metrics.registry())
    }
}

/// Total WCET inflation a committed plan carries for one per-migration
/// `charge`: a charged whole placement absorbs one charge, a split chain
/// one per piece after the first (the first piece never crosses a
/// boundary). Mirrors the charging rule inside
/// [`IncrementalPlacer::plan_charged`].
fn plan_inflation(plan: &PlacementPlan, charge: Time) -> Time {
    match plan {
        PlacementPlan::Whole { .. } => charge,
        PlacementPlan::Split { pieces } => charge * (pieces.len().saturating_sub(1) as u64),
    }
}

/// Counts the parents (other than `arriving`) whose placement — the set of
/// `(core, piece index)` pairs — differs between `old` and `new`.
fn moved_parents(old: &Partition, new: &Partition, arriving: TaskId) -> usize {
    let signature = |p: &Partition, parent: TaskId| -> Vec<(usize, usize)> {
        let mut sig: Vec<(usize, usize)> = p
            .placements_of(parent)
            .into_iter()
            .map(|(core, placed)| (core.0, placed.split.as_ref().map_or(0, |s| s.part_index)))
            .collect();
        sig.sort_unstable();
        sig
    };
    old.parent_ids()
        .into_iter()
        .filter(|parent| *parent != arriving)
        .filter(|parent| signature(old, *parent) != signature(new, *parent))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(id: u32, wcet_ms: u64, period_ms: u64) -> Task {
        Task::new(id, Time::from_millis(wcet_ms), Time::from_millis(period_ms)).unwrap()
    }

    fn arrive(c: &mut AdmissionController, t: Task) -> DecisionKind {
        c.handle(WorkloadEvent::Arrive(t)).kind
    }

    /// A config builder where all tasks share a 10 ms period, so per-core
    /// RTA accepts exactly up to 100% utilization — convenient for
    /// constructing repair and fallback scenarios.
    fn two_cores_no_split() -> OnlineConfigBuilder {
        OnlineConfig::builder()
            .cores(2)
            .min_split_budget(Time::from_secs(10))
    }

    #[test]
    fn zero_cores_is_an_error() {
        assert_eq!(
            AdmissionController::new(OnlineConfig::new(0)).unwrap_err(),
            OnlineError::NoCores
        );
    }

    #[test]
    fn light_arrivals_take_the_fast_whole_path() {
        let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        for id in 0..4 {
            let kind = arrive(&mut c, task(id, 1, 10));
            assert_eq!(
                kind,
                DecisionKind::Admitted {
                    path: DecisionPath::FastWhole,
                    migrations: 0,
                    inflation: Time::ZERO
                }
            );
        }
        assert_eq!(c.admitted_count(), 4);
        assert_eq!(c.stats().fast_whole, 4);
        assert!(c.partition().is_schedulable(c.config().test));
    }

    #[test]
    fn splitting_admits_what_whole_placement_cannot() {
        let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        for id in 0..2 {
            arrive(&mut c, task(id, 6, 10));
        }
        let kind = arrive(&mut c, task(2, 6, 10));
        assert_eq!(
            kind,
            DecisionKind::Admitted {
                path: DecisionPath::FastSplit,
                migrations: 0,
                inflation: Time::ZERO
            }
        );
        assert_eq!(c.partition().split_count(), 1);
        assert!(c.partition().is_schedulable(c.config().test));
    }

    #[test]
    fn repair_relocates_a_blocking_task() {
        // P0 fills with A (0.30) and B (0.55); C (0.60) lands on P1. D
        // (0.45) fits nowhere whole and splitting is disabled; moving A to
        // P1 frees exactly enough room on P0.
        let mut c = AdmissionController::new(two_cores_no_split().build()).unwrap();
        arrive(&mut c, task(0, 3, 10));
        arrive(&mut c, task(1, 55, 100));
        arrive(&mut c, task(2, 6, 10));
        let kind = arrive(&mut c, task(3, 45, 100));
        assert_eq!(
            kind,
            DecisionKind::Admitted {
                path: DecisionPath::Repair,
                migrations: 1,
                inflation: Time::ZERO
            }
        );
        assert_eq!(c.stats().repairs, 1);
        assert_eq!(c.stats().migrations_caused, 1);
        assert!(c.partition().is_schedulable(c.config().test));
    }

    #[test]
    fn repair_targets_rank_by_blocker_deficit() {
        // P0 carries 0.85, P1 carries 0.55. A 0.50 arrival fits nowhere
        // whole; the repair cascade must try P1 first (deficit 0.05) and
        // P0 last (deficit 0.35) — not index order.
        let mut c = AdmissionController::new(two_cores_no_split().build()).unwrap();
        arrive(&mut c, task(0, 85, 100));
        arrive(&mut c, task(1, 55, 100));
        assert_eq!(
            c.repair_target_order(&task(2, 50, 100)),
            vec![CoreId(1), CoreId(0)],
            "the core needing the least shed utilization must come first"
        );
    }

    #[test]
    fn full_repartition_is_the_last_resort() {
        // A (0.35) and B (0.35) pack onto P0, C (0.65) onto P1. D (0.65)
        // fits nowhere whole, splitting and repair are disabled, but the
        // offline algorithm places {0.65, 0.35} on each core from scratch.
        let config = two_cores_no_split().max_repair_moves(0).build();
        let mut c = AdmissionController::new(config).unwrap();
        arrive(&mut c, task(0, 35, 100));
        arrive(&mut c, task(1, 35, 100));
        arrive(&mut c, task(2, 65, 100));
        let kind = arrive(&mut c, task(3, 65, 100));
        assert_eq!(
            kind,
            DecisionKind::Admitted {
                path: DecisionPath::FullRepartition,
                migrations: 2,
                inflation: Time::ZERO
            }
        );
        assert!(c.partition().is_schedulable(c.config().test));
        // Everything the controller admitted is still placed.
        assert_eq!(c.partition().parent_ids().len(), 4);
    }

    #[test]
    fn cached_and_uncached_controllers_decide_identically() {
        let events = crate::ChurnGenerator::new()
            .cores(2)
            .target_normalized_utilization(0.85)
            .events(80)
            .seed(7)
            .generate()
            .unwrap();
        let mut cached = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        let mut scratch =
            AdmissionController::new(OnlineConfig::builder().cores(2).rta_cache(false).build())
                .unwrap();
        assert!(cached.partition().analysis_cache_enabled());
        assert!(!scratch.partition().analysis_cache_enabled());
        let a = cached.handle_all(&events);
        let b = scratch.handle_all(&events);
        assert_eq!(a, b);
        assert_eq!(cached.partition(), scratch.partition());
        assert_eq!(cached.stats(), scratch.stats());
    }

    #[test]
    fn rolled_back_repair_restores_the_cache_state() {
        // Two 90% tasks leave no room: the repair pass tries (and fails) to
        // relocate them before the arrival is rejected; the rollback must
        // restore not just the placements but the attached analysis cache.
        let config = two_cores_no_split().fallback(false).build();
        let mut c = AdmissionController::new(config).unwrap();
        arrive(&mut c, task(0, 9, 10));
        arrive(&mut c, task(1, 9, 10));
        let before = c.partition().clone();
        assert!(before.analysis_cache_enabled());
        let kind = arrive(&mut c, task(2, 15, 100));
        assert_eq!(
            kind,
            DecisionKind::Rejected {
                reason: RejectionReason::NoFeasiblePlacement
            }
        );
        for core in 0..2 {
            assert_eq!(
                c.partition().cached_core(CoreId(core)),
                before.cached_core(CoreId(core)),
                "cache state diverged on core {core} after rollback"
            );
        }
    }

    #[test]
    fn fallback_with_constrained_deadlines_keeps_cached_and_scratch_aligned() {
        // The offline fallback assigns global rate-monotonic priorities,
        // but every probe and commit ranks whole tasks deadline-
        // monotonically; with constrained deadlines (D < T) the two orders
        // genuinely differ, so the adoption must renormalize before the
        // cache snapshots the cores — otherwise cached and uncached
        // controllers diverge on post-fallback decisions.
        let constrained = |id: u32, wcet: u64, period: u64, deadline: u64| {
            Task::builder(id)
                .wcet(Time::from_millis(wcet))
                .period(Time::from_millis(period))
                .deadline(Time::from_millis(deadline))
                .build()
                .unwrap()
        };
        let mut fallbacks = 0;
        for variant in 0..8u64 {
            // Patterned constrained-deadline arrivals heavy enough to push
            // the cascade (split and repair disabled) into the fallback.
            let events: Vec<WorkloadEvent> = (0..12u64)
                .map(|i| {
                    let period = 60 + ((i * 17 + variant * 29) % 60);
                    let wcet = 6 + ((i * 11 + variant * 7) % (period / 3));
                    let deadline = period - ((i * 13 + variant * 5) % (period / 2));
                    WorkloadEvent::Arrive(constrained(i as u32, wcet, period, deadline.max(wcet)))
                })
                .collect();
            let config = two_cores_no_split().max_repair_moves(0);
            let mut cached = AdmissionController::new(config.clone().build()).unwrap();
            let mut scratch = AdmissionController::new(config.rta_cache(false).build()).unwrap();
            assert_eq!(
                cached.handle_all(&events),
                scratch.handle_all(&events),
                "variant {variant} diverged"
            );
            assert_eq!(cached.partition(), scratch.partition());
            fallbacks += cached.stats().full_repartitions;
            // The adopted partition must follow the per-core DM discipline:
            // whole-task priority order matches (deadline, period, id).
            for core in 0..2 {
                let mut wholes: Vec<&Task> = cached
                    .partition()
                    .core(CoreId(core))
                    .iter()
                    .filter(|p| !p.is_split())
                    .map(|p| &p.task)
                    .collect();
                wholes.sort_by_key(|t| t.priority().expect("whole tasks are prioritised"));
                let dm_sorted = wholes
                    .windows(2)
                    .all(|w| (w[0].deadline(), w[0].period()) <= (w[1].deadline(), w[1].period()));
                assert!(dm_sorted, "variant {variant} core {core} not DM-ordered");
            }
        }
        assert!(fallbacks > 0, "the scenario never exercised the fallback");
    }

    #[test]
    fn full_repartition_reattaches_the_cache() {
        let config = two_cores_no_split().max_repair_moves(0).build();
        let mut c = AdmissionController::new(config).unwrap();
        arrive(&mut c, task(0, 35, 100));
        arrive(&mut c, task(1, 35, 100));
        arrive(&mut c, task(2, 65, 100));
        arrive(&mut c, task(3, 65, 100));
        assert_eq!(c.stats().full_repartitions, 1);
        assert!(c.partition().analysis_cache_enabled());
        for core in 0..2 {
            assert!(
                c.partition().cached_core(CoreId(core)).is_some(),
                "core {core} cache not converged after adoption"
            );
        }
    }

    #[test]
    fn journal_and_clone_rollback_decide_identically() {
        // The journal is pure mechanism: same decisions, same partitions,
        // same stats as the clone-snapshot rollback it replaces — across a
        // churn trace heavy enough to exercise repair and fallback.
        let events = crate::ChurnGenerator::new()
            .cores(2)
            .target_normalized_utilization(0.95)
            .events(120)
            .seed(11)
            .generate()
            .unwrap();
        let mut journal = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        let mut clone =
            AdmissionController::new(OnlineConfig::builder().cores(2).journal(false).build())
                .unwrap();
        assert_eq!(journal.handle_all(&events), clone.handle_all(&events));
        assert_eq!(journal.partition(), clone.partition());
        assert_eq!(journal.stats(), clone.stats());
    }

    #[test]
    fn warm_and_cold_probes_decide_identically() {
        // Cross-probe warm starts only change iteration counts, never
        // verdicts: identical decisions on a split-heavy trace.
        let events = crate::ChurnGenerator::new()
            .cores(4)
            .target_normalized_utilization(0.95)
            .events(120)
            .seed(13)
            .generate()
            .unwrap();
        let mut warm = AdmissionController::new(OnlineConfig::new(4)).unwrap();
        let mut cold = AdmissionController::new(
            OnlineConfig::builder()
                .cores(4)
                .probe_warm_start(false)
                .build(),
        )
        .unwrap();
        assert_eq!(warm.handle_all(&events), cold.handle_all(&events));
        assert_eq!(warm.partition(), cold.partition());
        assert!(
            warm.stats().fast_split > 0,
            "the trace never exercised the split path"
        );
    }

    #[test]
    fn journal_cascade_is_clone_free() {
        // The acceptance criterion of the journal refactor: no
        // full-partition clones remain anywhere on the decision hot path
        // (repair rollback included) when the journal is enabled.
        let events = crate::ChurnGenerator::new()
            .cores(2)
            .target_normalized_utilization(0.95)
            .events(120)
            .seed(11)
            .generate()
            .unwrap();
        let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        let before = spms_core::Partition::clone_count();
        c.handle_all(&events);
        assert_eq!(
            spms_core::Partition::clone_count(),
            before,
            "the journal-based cascade cloned a partition"
        );
        assert!(
            c.stats().repairs + c.stats().full_repartitions > 0,
            "the trace never left the fast path"
        );
    }

    #[test]
    fn slack_ranking_admits_what_utilization_ranking_rejects() {
        // Two cores, k = 1, splits and fallback disabled; all periods
        // 100 ms. P0 holds BIG (46 ms, D = 100) and SMALL (25 ms, D = 40);
        // P1 holds L (30 ms, D = 59). The arrival M (30 ms, D = 50) fits
        // nowhere whole: on P0 SMALL's interference pushes M to 55 > 50,
        // on P1 M's interference pushes L to 60 > 59.
        //
        // Only evicting SMALL unblocks P0 (M's blocker is M itself, and
        // SMALL is the interference above it — evicting BIG, ranked below
        // M, frees nothing M can use). Utilization ranking evicts BIG
        // first anyway: the move *succeeds* (BIG fits on P1), burns the
        // single repair move, and M is still blocked — the arrival is
        // rejected. Slack-guided ranking probes SMALL first (smallest
        // candidate that provably unblocks), relocates it to P1 and admits
        // M with the same single move.
        let constrained = |id: u32, wcet_ms: u64, deadline_ms: u64| {
            Task::builder(id)
                .wcet(Time::from_millis(wcet_ms))
                .period(Time::from_millis(100))
                .deadline(Time::from_millis(deadline_ms))
                .build()
                .unwrap()
        };
        let trace = [
            constrained(0, 46, 100), // BIG → P0
            constrained(1, 25, 40),  // SMALL → P0
            constrained(4, 30, 59),  // L → P0 rejected (BIG at 101) → P1
            constrained(9, 30, 50),  // M: the contested arrival
        ];
        let config = two_cores_no_split().max_repair_moves(1).fallback(false);
        let run = |ranking: RepairRanking| {
            let mut c =
                AdmissionController::new(config.clone().repair_ranking(ranking).build()).unwrap();
            let decisions: Vec<DecisionKind> =
                trace.iter().map(|t| arrive(&mut c, t.clone())).collect();
            (decisions, c)
        };

        let (util_decisions, util) = run(RepairRanking::Utilization);
        assert_eq!(
            util_decisions[3],
            DecisionKind::Rejected {
                reason: RejectionReason::NoFeasiblePlacement
            },
            "utilization ranking should burn its move on BIG and reject M"
        );
        assert!(util.partition().is_schedulable(util.config().test));

        let (slack_decisions, slack) = run(RepairRanking::Slack);
        assert_eq!(
            slack_decisions[3],
            DecisionKind::Admitted {
                path: DecisionPath::Repair,
                migrations: 1,
                inflation: Time::ZERO
            },
            "slack ranking should evict SMALL and admit M"
        );
        assert!(slack.partition().is_schedulable(slack.config().test));
        // Soundness: every core of the slack-admitted partition passes a
        // from-scratch exact RTA (not the cache, not the offline heuristic
        // — whose first-fit search cannot find this arrangement and proves
        // nothing about it).
        for responses in slack.partition().response_times() {
            assert!(responses.iter().all(Option::is_some));
        }
        assert_eq!(slack.partition().validate(), Ok(()));
    }

    #[test]
    fn slack_ranking_relocates_split_chains() {
        // Chain-aware relocation: under slack ranking a split parent is a
        // legal victim — its whole chain is removed and re-placed. The
        // utilization ranking never touches split parents.
        let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        for id in 0..2 {
            arrive(&mut c, task(id, 6, 10));
        }
        arrive(&mut c, task(2, 6, 10));
        assert_eq!(c.partition().split_count(), 1, "setup: task 2 is split");
        // Both cores now carry ~90%; a 30% whole arrival has no room and
        // no split capacity. Whether or not repair succeeds, picking a
        // victim must consider the split parent without corrupting the
        // partition.
        arrive(&mut c, task(3, 3, 10));
        assert_eq!(c.partition().validate(), Ok(()));
        assert!(c.partition().is_schedulable(c.config().test));
    }

    #[test]
    fn rejection_leaves_the_partition_untouched() {
        let config = two_cores_no_split()
            .max_repair_moves(0)
            .fallback(false)
            .build();
        let mut c = AdmissionController::new(config).unwrap();
        arrive(&mut c, task(0, 9, 10));
        arrive(&mut c, task(1, 9, 10));
        let before = c.partition().clone();
        // Total utilization (1.95) still fits the platform, but neither core
        // can absorb another 15% on top of its 90%.
        let kind = arrive(&mut c, task(2, 15, 100));
        assert_eq!(
            kind,
            DecisionKind::Rejected {
                reason: RejectionReason::NoFeasiblePlacement
            }
        );
        assert_eq!(c.partition(), &before);
        assert_eq!(c.admitted_count(), 2);
    }

    #[test]
    fn overload_is_rejected_before_any_analysis() {
        let mut c = AdmissionController::new(OnlineConfig::new(1)).unwrap();
        arrive(&mut c, task(0, 9, 10));
        let kind = arrive(&mut c, task(1, 2, 10));
        assert_eq!(
            kind,
            DecisionKind::Rejected {
                reason: RejectionReason::PlatformOverloaded
            }
        );
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        arrive(&mut c, task(0, 1, 10));
        let kind = arrive(&mut c, task(0, 1, 10));
        assert_eq!(
            kind,
            DecisionKind::Rejected {
                reason: RejectionReason::DuplicateTask
            }
        );
    }

    #[test]
    fn departures_release_capacity() {
        let mut c = AdmissionController::new(OnlineConfig::new(1)).unwrap();
        arrive(&mut c, task(0, 6, 10));
        assert_eq!(
            arrive(&mut c, task(1, 6, 10)),
            DecisionKind::Rejected {
                reason: RejectionReason::PlatformOverloaded
            }
        );
        assert_eq!(
            c.handle(WorkloadEvent::Depart(TaskId(0))).kind,
            DecisionKind::Departed
        );
        assert_eq!(c.admitted_count(), 0);
        assert_eq!(c.partition().placement_count(), 0);
        assert!(matches!(
            arrive(&mut c, task(1, 6, 10)),
            DecisionKind::Admitted { .. }
        ));
    }

    #[test]
    fn unknown_departures_are_noops() {
        let mut c = AdmissionController::new(OnlineConfig::new(1)).unwrap();
        assert_eq!(
            c.handle(WorkloadEvent::Depart(TaskId(9))).kind,
            DecisionKind::DepartUnknown
        );
        assert_eq!(c.stats().unknown_departures, 1);
    }

    #[test]
    fn split_task_departure_removes_every_piece() {
        let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        for id in 0..2 {
            arrive(&mut c, task(id, 6, 10));
        }
        arrive(&mut c, task(2, 6, 10));
        assert_eq!(c.partition().split_count(), 1);
        c.handle(WorkloadEvent::Depart(TaskId(2)));
        assert_eq!(c.partition().split_count(), 0);
        assert_eq!(c.partition().placement_count(), 2);
    }

    #[test]
    fn decisions_are_deterministic() {
        let events: Vec<WorkloadEvent> = (0..8)
            .map(|i| WorkloadEvent::Arrive(task(i, 4, 10)))
            .chain([WorkloadEvent::Depart(TaskId(3))])
            .collect();
        let run = || {
            let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
            c.handle_all(&events);
            (c.decisions().to_vec(), c.partition().clone())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn latencies_parallel_the_decision_log() {
        let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        arrive(&mut c, task(0, 1, 10));
        c.handle(WorkloadEvent::Depart(TaskId(0)));
        assert_eq!(
            c.decision_latency_histogram().count() as usize,
            c.decisions().len()
        );
    }

    #[test]
    fn metrics_mirror_outcomes_stages_and_traces() {
        let mut c = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        arrive(&mut c, task(0, 4, 10)); // fast-whole
        arrive(&mut c, task(0, 4, 10)); // duplicate rejection
        c.handle(WorkloadEvent::Depart(TaskId(0)));
        c.handle(WorkloadEvent::Depart(TaskId(9))); // unknown departure
        let r = c.metrics().registry();
        assert_eq!(r.counter_by_name("spms_events_total"), Some(4));
        assert_eq!(r.counter_by_name("spms_arrivals_total"), Some(2));
        assert_eq!(r.counter_by_name("spms_admitted_fast_whole_total"), Some(1));
        assert_eq!(r.counter_by_name("spms_rejected_duplicate_total"), Some(1));
        assert_eq!(r.counter_by_name("spms_departures_total"), Some(1));
        assert_eq!(r.counter_by_name("spms_unknown_departures_total"), Some(1));
        // Only the admitted arrival reached the cascade; the duplicate was
        // rejected before stage one.
        assert_eq!(
            r.counter_by_name("spms_mech_stage_fast_whole_attempts_total"),
            Some(1)
        );
        assert_eq!(
            r.counter_by_name("spms_mech_stage_fast_whole_successes_total"),
            Some(1)
        );
        // The fast-whole probe is visible in the folded hot counters.
        assert!(r.counter_by_name("spms_mech_whole_probes_total").unwrap() >= 1);
        // Every event left a trace, the admission's carrying one span.
        assert_eq!(c.metrics().traces().len(), 4);
        let first = c.metrics().traces().iter().next().unwrap();
        assert_eq!(first.label, "admitted_fast_whole");
        assert_eq!(first.spans.len(), 1);
    }

    #[test]
    fn stats_ratios() {
        let stats = ControllerStats {
            arrivals: 10,
            admitted: 8,
            fast_whole: 5,
            fast_split: 1,
            ..ControllerStats::default()
        };
        assert!((stats.acceptance_ratio() - 0.8).abs() < 1e-12);
        assert!((stats.fast_path_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(ControllerStats::default().acceptance_ratio(), 1.0);
    }

    #[test]
    fn crpd_charges_inflate_split_admissions() {
        use spms_overhead::CrpdCostModel;
        // Two 60% tasks force the third to split; under the heavy CRPD
        // model each later piece absorbs one migration charge, and the
        // decision reports the total inflation.
        let model = CrpdCostModel::heavy();
        let charge = model.migration_charge(&task(2, 6, 10));
        let config = OnlineConfig::builder()
            .cores(2)
            .cost_model(CostModelSpec::Crpd(model))
            .build();
        let mut c = AdmissionController::new(config).unwrap();
        arrive(&mut c, task(0, 6, 10));
        arrive(&mut c, task(1, 6, 10));
        let kind = arrive(&mut c, task(2, 6, 10));
        let DecisionKind::Admitted {
            path: DecisionPath::FastSplit,
            migrations: 0,
            inflation,
        } = kind
        else {
            panic!("expected a charged fast-split admission, got {kind:?}");
        };
        assert!(
            inflation >= charge,
            "each hop must cost at least one charge"
        );
        assert_eq!(
            inflation.as_nanos() % charge.as_nanos(),
            0,
            "inflation must be a whole number of per-hop charges"
        );
        assert_eq!(c.stats().inflation_charged_ns, inflation.as_nanos());
        assert!(c.partition().is_schedulable(c.config().test));
    }

    #[test]
    fn an_unaffordable_charge_rejects_what_free_migration_admits() {
        use spms_overhead::{CrpdCostModel, WorkingSetAttribution};
        // A 64 MiB working set reloads in tens of milliseconds — longer
        // than the 10 ms deadlines — so no split piece or relocation can
        // absorb the charge. The same trace admits under ZeroCost.
        let mut huge = CrpdCostModel::heavy();
        huge.attribution = WorkingSetAttribution::Uniform {
            bytes: 64 * 1024 * 1024,
        };
        let charged = OnlineConfig::builder()
            .cores(2)
            .fallback(false)
            .cost_model(CostModelSpec::Crpd(huge))
            .build();
        let free = OnlineConfig::builder().cores(2).fallback(false).build();
        let trace = [task(0, 6, 10), task(1, 6, 10), task(2, 6, 10)];
        let mut charged_c = AdmissionController::new(charged).unwrap();
        let mut free_c = AdmissionController::new(free).unwrap();
        let charged_all: Vec<DecisionKind> = trace
            .iter()
            .map(|t| arrive(&mut charged_c, t.clone()))
            .collect();
        let free_all: Vec<DecisionKind> = trace
            .iter()
            .map(|t| arrive(&mut free_c, t.clone()))
            .collect();
        let charged_last = *charged_all.last().unwrap();
        let free_last = *free_all.last().unwrap();
        assert!(matches!(
            free_last,
            DecisionKind::Admitted {
                path: DecisionPath::FastSplit,
                ..
            }
        ));
        assert_eq!(
            charged_last,
            DecisionKind::Rejected {
                reason: RejectionReason::NoFeasiblePlacement
            }
        );
        // The rejected arrival left no inflated residue behind.
        assert_eq!(charged_c.stats().inflation_charged_ns, 0);
        assert!(charged_c
            .partition()
            .is_schedulable(charged_c.config().test));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_methods_still_match_the_builder() {
        // The shims stay until the next breaking release; they must keep
        // producing exactly the config the builder produces.
        let via_builder = OnlineConfig::builder()
            .cores(3)
            .test(UniprocessorTest::ResponseTime)
            .min_split_budget(Time::from_millis(1))
            .max_repair_moves(5)
            .fallback(false)
            .rta_cache(false)
            .journal(false)
            .probe_warm_start(false)
            .repair_ranking(RepairRanking::Utilization)
            .build();
        let via_shims = OnlineConfig::new(3)
            .with_test(UniprocessorTest::ResponseTime)
            .with_min_split_budget(Time::from_millis(1))
            .with_max_repair_moves(5)
            .with_fallback(false)
            .with_rta_cache(false)
            .with_journal(false)
            .with_probe_warm_start(false)
            .with_repair_ranking(RepairRanking::Utilization);
        assert_eq!(via_builder, via_shims);
    }

    #[test]
    fn decision_log_format_is_pinned() {
        // The serialized decision log is an interchange format (digested by
        // `spms online --trace`, diffed by CI): zero-inflation admissions
        // must keep the exact pre-cost-model shape, charged ones append the
        // `inflation` entry, and old logs read back with zero inflation.
        let zero = Decision {
            event_index: 0,
            task: TaskId(7),
            kind: DecisionKind::Admitted {
                path: DecisionPath::FastWhole,
                migrations: 0,
                inflation: Time::ZERO,
            },
        };
        assert_eq!(
            serde_json::to_string(&zero).unwrap(),
            r#"{"event_index":0,"task":7,"kind":{"Admitted":{"path":"FastWhole","migrations":0}}}"#
        );
        let charged = DecisionKind::Admitted {
            path: DecisionPath::Repair,
            migrations: 2,
            inflation: Time::from_nanos(1500),
        };
        assert_eq!(
            serde_json::to_string(&charged).unwrap(),
            r#"{"Admitted":{"path":"Repair","migrations":2,"inflation":1500}}"#
        );
        for kind in [
            charged,
            DecisionKind::Rejected {
                reason: RejectionReason::NoFeasiblePlacement,
            },
            DecisionKind::Departed,
            DecisionKind::DepartUnknown,
        ] {
            let json = serde_json::to_string(&kind).unwrap();
            assert_eq!(serde_json::from_str::<DecisionKind>(&json).unwrap(), kind);
        }
        let legacy = r#"{"Admitted":{"path":"FastSplit","migrations":1}}"#;
        assert_eq!(
            serde_json::from_str::<DecisionKind>(legacy).unwrap(),
            DecisionKind::Admitted {
                path: DecisionPath::FastSplit,
                migrations: 1,
                inflation: Time::ZERO
            }
        );
    }

    #[test]
    fn display_impls_are_stable() {
        assert_eq!(DecisionPath::FastWhole.to_string(), "fast-whole");
        assert_eq!(
            DecisionPath::FullRepartition.to_string(),
            "full-repartition"
        );
        assert_eq!(
            RejectionReason::NoFeasiblePlacement.to_string(),
            "no feasible placement"
        );
        assert!(!OnlineError::NoCores.to_string().is_empty());
    }
}
