//! The workload-event stream the admission controller consumes.

use serde::{Deserialize, Serialize};
use spms_task::{Task, TaskId, Time};

/// One event of an online workload: a task asking to join the system, or an
/// admitted task leaving it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// A new task arrives and requests admission.
    Arrive(Task),
    /// A previously admitted task departs and releases its capacity.
    Depart(TaskId),
}

impl WorkloadEvent {
    /// The task id the event concerns.
    pub fn task_id(&self) -> TaskId {
        match self {
            WorkloadEvent::Arrive(task) => task.id(),
            WorkloadEvent::Depart(id) => *id,
        }
    }

    /// Whether this is an arrival.
    pub fn is_arrival(&self) -> bool {
        matches!(self, WorkloadEvent::Arrive(_))
    }
}

/// A [`WorkloadEvent`] stamped with its absolute occurrence time.
///
/// Timed traces feed the [`EventLoop`](crate::EventLoop): events sharing a
/// timestamp form one batch whose processing order is decided by the loop's
/// seeded tie-shuffle, while events at distinct timestamps keep their
/// temporal order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Absolute time the event occurs at.
    pub at: Time,
    /// The workload event itself.
    pub event: WorkloadEvent,
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::Time;

    #[test]
    fn event_accessors() {
        let t = Task::new(3, Time::from_millis(1), Time::from_millis(10)).unwrap();
        let arrive = WorkloadEvent::Arrive(t);
        assert!(arrive.is_arrival());
        assert_eq!(arrive.task_id(), TaskId(3));
        let depart = WorkloadEvent::Depart(TaskId(7));
        assert!(!depart.is_arrival());
        assert_eq!(depart.task_id(), TaskId(7));
    }
}
