//! The workload-event stream the admission controller consumes, and the
//! JSON-lines trace format it is recorded in.

use std::fmt;

use serde::{Deserialize, Serialize};
use spms_task::{Task, TaskId, Time};

/// One event of an online workload: a task asking to join the system, or an
/// admitted task leaving it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// A new task arrives and requests admission.
    Arrive(Task),
    /// A previously admitted task departs and releases its capacity.
    Depart(TaskId),
    /// A resident task renews its admission lease. Leases live in the
    /// [`EventLoop`](crate::EventLoop): a renewal pushes the task's
    /// pending deadline expiration out by one lease period. The event
    /// never reaches the admission cascade — a bare controller records it
    /// as a [`DecisionKind::RenewNoted`](crate::DecisionKind::RenewNoted)
    /// no-op so leased traces stay replayable.
    Renew(TaskId),
}

impl WorkloadEvent {
    /// The task id the event concerns.
    pub fn task_id(&self) -> TaskId {
        match self {
            WorkloadEvent::Arrive(task) => task.id(),
            WorkloadEvent::Depart(id) => *id,
            WorkloadEvent::Renew(id) => *id,
        }
    }

    /// Whether this is an arrival.
    pub fn is_arrival(&self) -> bool {
        matches!(self, WorkloadEvent::Arrive(_))
    }

    /// Whether this is a lease renewal.
    pub fn is_renewal(&self) -> bool {
        matches!(self, WorkloadEvent::Renew(_))
    }
}

/// A [`WorkloadEvent`] stamped with its absolute occurrence time.
///
/// Timed traces feed the [`EventLoop`](crate::EventLoop): events sharing a
/// timestamp form one batch whose processing order is decided by the loop's
/// seeded tie-shuffle, while events at distinct timestamps keep their
/// temporal order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimedEvent {
    /// Absolute time the event occurs at.
    pub at: Time,
    /// The workload event itself.
    pub event: WorkloadEvent,
}

/// Why a JSON-lines workload trace failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A non-empty line was neither a [`TimedEvent`] nor a bare
    /// [`WorkloadEvent`].
    MalformedLine {
        /// 1-based line number in the trace source.
        line: usize,
        /// What the parser objected to.
        message: String,
    },
    /// The trace contained no events at all.
    Empty,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::MalformedLine { line, message } => {
                write!(f, "trace line {line}: not a workload event ({message})")
            }
            TraceError::Empty => write!(f, "trace contains no events"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSON-lines workload trace: each non-empty line is either a
/// [`TimedEvent`] (as written by `spms soak --dump-trace`) or a bare
/// [`WorkloadEvent`]. Timestamps are dropped — replays feed the events in
/// recorded order. Blank lines are skipped; anything else malformed is a
/// typed [`TraceError`] naming the offending line.
pub fn parse_trace(source: &str) -> Result<Vec<WorkloadEvent>, TraceError> {
    let mut events = Vec::new();
    for (index, line) in source.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let event = serde_json::from_str::<TimedEvent>(line)
            .map(|timed| timed.event)
            .or_else(|_| serde_json::from_str::<WorkloadEvent>(line))
            .map_err(|e| TraceError::MalformedLine {
                line: index + 1,
                message: e.to_string(),
            })?;
        events.push(event);
    }
    if events.is_empty() {
        return Err(TraceError::Empty);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::Time;

    #[test]
    fn event_accessors() {
        let t = Task::new(3, Time::from_millis(1), Time::from_millis(10)).unwrap();
        let arrive = WorkloadEvent::Arrive(t);
        assert!(arrive.is_arrival());
        assert_eq!(arrive.task_id(), TaskId(3));
        let depart = WorkloadEvent::Depart(TaskId(7));
        assert!(!depart.is_arrival());
        assert_eq!(depart.task_id(), TaskId(7));
        let renew = WorkloadEvent::Renew(TaskId(5));
        assert!(!renew.is_arrival());
        assert!(renew.is_renewal());
        assert_eq!(renew.task_id(), TaskId(5));
    }

    #[test]
    fn renewals_round_trip_through_traces() {
        let renew = serde_json::to_string(&WorkloadEvent::Renew(TaskId(4))).unwrap();
        let bare = serde_json::to_string(&WorkloadEvent::Depart(TaskId(1))).unwrap();
        let source = format!("{renew}\n{bare}\n");
        let events = parse_trace(&source).unwrap();
        assert_eq!(
            events,
            vec![
                WorkloadEvent::Renew(TaskId(4)),
                WorkloadEvent::Depart(TaskId(1))
            ]
        );
    }

    #[test]
    fn traces_parse_timed_and_bare_lines() {
        let t = Task::new(1, Time::from_millis(1), Time::from_millis(10)).unwrap();
        let timed = serde_json::to_string(&TimedEvent {
            at: Time::from_millis(5),
            event: WorkloadEvent::Arrive(t.clone()),
        })
        .unwrap();
        let bare = serde_json::to_string(&WorkloadEvent::Depart(TaskId(1))).unwrap();
        let source = format!("{timed}\n\n   \n{bare}\n");
        let events = parse_trace(&source).unwrap();
        assert_eq!(
            events,
            vec![WorkloadEvent::Arrive(t), WorkloadEvent::Depart(TaskId(1))]
        );
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let bare = serde_json::to_string(&WorkloadEvent::Depart(TaskId(1))).unwrap();
        let source = format!("{bare}\n{bare}\n{{\"nonsense\": true}}\n");
        match parse_trace(&source) {
            Err(TraceError::MalformedLine { line: 3, .. }) => {}
            other => panic!("expected a line-3 parse error, got {other:?}"),
        }
        let rendered = parse_trace(&source).unwrap_err().to_string();
        assert!(rendered.contains("line 3"), "message was: {rendered}");
    }

    #[test]
    fn empty_traces_are_a_typed_error() {
        assert_eq!(parse_trace(""), Err(TraceError::Empty));
        assert_eq!(parse_trace("\n  \n"), Err(TraceError::Empty));
    }
}
