//! The timestamped event loop driving a sharded admission service.
//!
//! [`EventLoop`] turns the admission layer from a synchronous library call
//! into an engine: events live in a timestamped [`BinaryHeap`] and are
//! processed in time order — workload arrivals and departures from a
//! loaded trace, deadline expirations that synthesize a departure when an
//! admitted task's lease runs out, and periodic rebalance ticks that
//! work-steal utilization between shards.
//!
//! **Determinism.** Events sharing a timestamp form one batch whose
//! processing order is decided by a seeded ChaCha8 tie-shuffle, not by
//! heap insertion order; everything else is ordered by `(time, sequence)`.
//! Equal configuration, trace and shuffle seed therefore reproduce the
//! processed event stream byte-identically. With leases disabled the heap
//! content is independent of admission outcomes, so the processed stream
//! is also identical *across shard counts* (the `events_digest` the soak
//! experiment asserts on); with leases enabled, expirations depend on
//! which arrivals were admitted, which may legitimately differ between
//! shard layouts.
//!
//! **Lease renewals.** A [`WorkloadEvent::Renew`] in the trace extends a
//! resident task's lease: the loop records the new deadline and schedules
//! a fresh [`EngineEvent::DeadlineExpire`]. Expirations carry no
//! cancellation handle, so stale heap entries are screened on pop — an
//! expiration only synthesizes a departure when its timestamp matches the
//! task's *live* deadline and the task is still resident. Renewals are
//! lease bookkeeping: they are logged but never dispatched to the
//! admission engine.
//!
//! The loop records every workload event it dispatches (including
//! synthesized lease departures and noted renewals) as a [`TimedEvent`]
//! log. Feeding that log to a fresh single controller reproduces a
//! 1-shard run's decision log byte-identically — the `shard_equivalence`
//! suite enforces it. (Renewals replay as
//! [`RenewNoted`](crate::DecisionKind::RenewNoted) no-ops.)

use std::collections::{BTreeMap, BinaryHeap};

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spms_faults::{FaultKind, FaultPlan};
use spms_task::{TaskId, Time};
use spms_telemetry::{Snapshot, SnapshotFilter};

use crate::{AdmissionShard, Decision, ShardedAdmission, TimedEvent, WorkloadEvent};

/// How many per-tick rebalance snapshots the loop retains when
/// [`EventLoopConfig::snapshot_on_rebalance`] is set.
pub const TICK_SNAPSHOT_CAPACITY: usize = 64;

/// Largest left-shift the zero-move rebalance backoff applies to the
/// tick period (2³ = 8× stretch) when
/// [`EventLoopConfig::rebalance_backoff`] is enabled.
pub const MAX_REBALANCE_BACKOFF_SHIFT: u32 = 3;

/// One event the loop can process.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A workload event from the trace (or injected by a caller).
    Workload(WorkloadEvent),
    /// An admitted task's lease ran out: synthesize its departure if it is
    /// still resident, else ignore (it already departed).
    DeadlineExpire(TaskId),
    /// Run one work-stealing rebalance pass over the shards.
    RebalanceTick,
    /// Inject one fault into the engine
    /// ([`ShardedAdmission::apply_fault`]).
    Fault(FaultKind),
    /// A timed fault's effect ends ([`ShardedAdmission::end_fault`]).
    FaultEnd(FaultKind),
    /// Run one self-audit pass ([`ShardedAdmission::audit_tick`]),
    /// re-verifying one cached core against a scratch recomputation.
    AuditTick,
}

/// Heap entry: a scheduled event with its timestamp and insertion
/// sequence. The heap is a max-heap, so `Ord` is reversed to pop the
/// earliest `(at, seq)` first.
#[derive(Debug, Clone, PartialEq)]
struct Scheduled {
    at: Time,
    seq: u64,
    event: EngineEvent,
}

impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Configuration of an [`EventLoop`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventLoopConfig {
    /// Seed of the same-timestamp tie-shuffle.
    pub shuffle_seed: u64,
    /// When set, every admission schedules a deadline expiration `lease`
    /// after its admission time, synthesizing a departure if the task is
    /// still resident then. `None` (the default) disables leases and keeps
    /// the heap content — and thus the processed event stream —
    /// independent of admission outcomes.
    pub lease: Option<Time>,
    /// When set, a rebalance tick fires every `period` while workload
    /// events remain pending.
    pub rebalance_period: Option<Time>,
    /// Migration budget of each rebalance tick.
    pub rebalance_max_moves: usize,
    /// When set, every rebalance tick captures a deterministic-section
    /// snapshot of the engine's merged metrics registry into a bounded
    /// log ([`EventLoop::tick_snapshots`], last
    /// [`TICK_SNAPSHOT_CAPACITY`] ticks) — the periodic-snapshot hook
    /// soak reports read.
    pub snapshot_on_rebalance: bool,
    /// When set, a self-audit tick fires every `period` while workload
    /// events remain pending, re-verifying one cached core per tick.
    pub audit_period: Option<Time>,
    /// When set, consecutive zero-move rebalance ticks exponentially
    /// stretch the self-rescheduled tick interval (doubling per idle
    /// tick, capped at 2^[`MAX_REBALANCE_BACKOFF_SHIFT`]×); any tick that
    /// moves a task resets the interval to
    /// [`rebalance_period`](Self::rebalance_period).
    pub rebalance_backoff: bool,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            shuffle_seed: 0,
            lease: None,
            rebalance_period: None,
            rebalance_max_moves: 4,
            snapshot_on_rebalance: false,
            audit_period: None,
            rebalance_backoff: false,
        }
    }
}

impl EventLoopConfig {
    /// A default configuration with the given tie-shuffle seed.
    pub fn new(shuffle_seed: u64) -> Self {
        EventLoopConfig {
            shuffle_seed,
            ..EventLoopConfig::default()
        }
    }

    /// Sets the admission lease (builder style).
    pub fn with_lease(mut self, lease: Option<Time>) -> Self {
        self.lease = lease;
        self
    }

    /// Sets the rebalance period (builder style).
    pub fn with_rebalance_period(mut self, period: Option<Time>) -> Self {
        self.rebalance_period = period;
        self
    }

    /// Sets the per-tick migration budget (builder style).
    pub fn with_rebalance_max_moves(mut self, moves: usize) -> Self {
        self.rebalance_max_moves = moves;
        self
    }

    /// Enables or disables per-tick metric snapshots (builder style).
    pub fn with_rebalance_snapshots(mut self, enabled: bool) -> Self {
        self.snapshot_on_rebalance = enabled;
        self
    }

    /// Sets the self-audit period (builder style).
    pub fn with_audit_period(mut self, period: Option<Time>) -> Self {
        self.audit_period = period;
        self
    }

    /// Enables or disables zero-move rebalance backoff (builder style).
    pub fn with_rebalance_backoff(mut self, enabled: bool) -> Self {
        self.rebalance_backoff = enabled;
        self
    }
}

/// The timestamped event loop. See the [module docs](self) for ordering
/// and determinism guarantees.
#[derive(Debug, Clone)]
pub struct EventLoop {
    config: EventLoopConfig,
    heap: BinaryHeap<Scheduled>,
    seq: u64,
    pending_workload: usize,
    now: Time,
    log: Vec<TimedEvent>,
    tick_snapshots: Vec<(Time, Snapshot)>,
    /// Live lease deadline per admitted task. Renewals move the entry
    /// forward; a popped [`EngineEvent::DeadlineExpire`] only fires when
    /// its timestamp still matches (stale entries from before a renewal
    /// are ignored).
    lease_deadlines: BTreeMap<TaskId, Time>,
    lease_renewals: u64,
    /// Consecutive zero-move rebalance ticks, clamped at
    /// [`MAX_REBALANCE_BACKOFF_SHIFT`]; drives the backoff stretch when
    /// [`EventLoopConfig::rebalance_backoff`] is set.
    rebalance_zero_streak: u32,
}

impl EventLoop {
    /// An empty loop.
    pub fn new(config: EventLoopConfig) -> Self {
        EventLoop {
            config,
            heap: BinaryHeap::new(),
            seq: 0,
            pending_workload: 0,
            now: Time::ZERO,
            log: Vec::new(),
            tick_snapshots: Vec::new(),
            lease_deadlines: BTreeMap::new(),
            lease_renewals: 0,
            rebalance_zero_streak: 0,
        }
    }

    /// The loop configuration.
    pub fn config(&self) -> &EventLoopConfig {
        &self.config
    }

    /// Schedules one event at an absolute time.
    pub fn schedule(&mut self, at: Time, event: EngineEvent) {
        if matches!(event, EngineEvent::Workload(_)) {
            self.pending_workload += 1;
        }
        self.heap.push(Scheduled {
            at,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Schedules a whole timed workload trace.
    pub fn load_trace(&mut self, trace: &[TimedEvent]) {
        for timed in trace {
            self.schedule(timed.at, EngineEvent::Workload(timed.event.clone()));
        }
    }

    /// Schedules a fault plan: each fault fires at its `at_ms`, and timed
    /// faults (stalls, crashes, spikes) schedule their matching
    /// [`EngineEvent::FaultEnd`] at `at_ms + duration`. Fault events do
    /// not count as pending workload — a plan alone never keeps the
    /// rebalance/audit ticks alive.
    pub fn load_faults(&mut self, plan: &FaultPlan) {
        for event in plan.events() {
            let at = Time::from_millis(event.at_ms);
            self.schedule(at, EngineEvent::Fault(event.kind));
            let duration = event.kind.duration_ms();
            if duration > 0 {
                self.schedule(
                    at + Time::from_millis(duration),
                    EngineEvent::FaultEnd(event.kind),
                );
            }
        }
    }

    /// The simulated clock: timestamp of the last processed batch.
    pub fn now(&self) -> Time {
        self.now
    }

    /// The workload events dispatched so far, in processing order, with
    /// the timestamps they fired at. Synthesized lease departures appear
    /// here too; rebalance ticks (which make no admission decision) do
    /// not.
    pub fn event_log(&self) -> &[TimedEvent] {
        &self.log
    }

    /// Detaches the processed-event log (e.g. to write a replayable
    /// trace) without cloning it.
    pub fn take_event_log(&mut self) -> Vec<TimedEvent> {
        std::mem::take(&mut self.log)
    }

    /// The per-tick deterministic metric snapshots captured when
    /// [`EventLoopConfig::snapshot_on_rebalance`] is set: `(tick time,
    /// snapshot)`, oldest first, bounded to the last
    /// [`TICK_SNAPSHOT_CAPACITY`] ticks.
    pub fn tick_snapshots(&self) -> &[(Time, Snapshot)] {
        &self.tick_snapshots
    }

    /// How many lease renewals the loop honored (resident task, leases
    /// enabled). Renewals in a lease-free run are logged but extend
    /// nothing.
    pub fn lease_renewals(&self) -> u64 {
        self.lease_renewals
    }

    /// Runs until the heap is empty, dispatching every event to `engine`.
    pub fn run<S: AdmissionShard>(&mut self, engine: &mut ShardedAdmission<S>) {
        self.run_with(engine, |_, _| {});
    }

    /// [`run`](Self::run) with an observer called after every decision —
    /// the hook the soak experiment uses to sample schedulability
    /// replays.
    pub fn run_with<S: AdmissionShard>(
        &mut self,
        engine: &mut ShardedAdmission<S>,
        mut observer: impl FnMut(&ShardedAdmission<S>, &Decision),
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.shuffle_seed);
        if let Some(period) = self.config.rebalance_period {
            if self.pending_workload > 0 {
                self.schedule(self.now + period, EngineEvent::RebalanceTick);
            }
        }
        if let Some(period) = self.config.audit_period {
            if self.pending_workload > 0 {
                self.schedule(self.now + period, EngineEvent::AuditTick);
            }
        }
        let mut batch: Vec<Scheduled> = Vec::new();
        while let Some(first) = self.heap.pop() {
            let at = first.at;
            batch.clear();
            batch.push(first);
            while self.heap.peek().is_some_and(|next| next.at == at) {
                batch.push(self.heap.pop().expect("peeked entry"));
            }
            // The batch arrives in (at, seq) order; the seeded shuffle
            // decides the order of simultaneous events instead of
            // insertion order, so it is identical for every shard count
            // and thread count.
            if batch.len() > 1 {
                batch.shuffle(&mut rng);
            }
            self.now = at;
            for scheduled in batch.drain(..) {
                match scheduled.event {
                    EngineEvent::Workload(WorkloadEvent::Renew(id)) => {
                        self.pending_workload -= 1;
                        self.renew(engine, at, id);
                    }
                    EngineEvent::Workload(event) => {
                        self.pending_workload -= 1;
                        self.dispatch(engine, at, event, &mut observer);
                    }
                    EngineEvent::DeadlineExpire(id) => {
                        // A renewal may have pushed the live deadline past
                        // this entry; only the current one fires.
                        if self.lease_deadlines.get(&id) == Some(&at)
                            && engine.resident_shard(id).is_some()
                        {
                            engine.record_lease_expiration();
                            self.dispatch(engine, at, WorkloadEvent::Depart(id), &mut observer);
                        }
                    }
                    EngineEvent::RebalanceTick => {
                        let moves = engine.rebalance(self.config.rebalance_max_moves);
                        if self.config.rebalance_backoff {
                            if moves == 0 {
                                self.rebalance_zero_streak = (self.rebalance_zero_streak + 1)
                                    .min(MAX_REBALANCE_BACKOFF_SHIFT);
                            } else {
                                self.rebalance_zero_streak = 0;
                            }
                        }
                        if self.config.snapshot_on_rebalance {
                            if self.tick_snapshots.len() == TICK_SNAPSHOT_CAPACITY {
                                self.tick_snapshots.remove(0);
                            }
                            let snapshot = engine
                                .merged_metrics_registry()
                                .snapshot(SnapshotFilter::Deterministic);
                            self.tick_snapshots.push((at, snapshot));
                        }
                        if self.pending_workload > 0 {
                            if let Some(period) = self.config.rebalance_period {
                                // Idle ticks stretch the interval
                                // exponentially (streak 0 ⇒ shift 0 ⇒ the
                                // plain period).
                                let stretched = period * (1u64 << self.rebalance_zero_streak);
                                self.schedule(at + stretched, EngineEvent::RebalanceTick);
                            }
                        }
                    }
                    EngineEvent::Fault(kind) => engine.apply_fault(&kind),
                    EngineEvent::FaultEnd(kind) => engine.end_fault(&kind),
                    EngineEvent::AuditTick => {
                        engine.audit_tick();
                        if self.pending_workload > 0 {
                            if let Some(period) = self.config.audit_period {
                                self.schedule(at + period, EngineEvent::AuditTick);
                            }
                        }
                    }
                }
            }
        }
    }

    fn dispatch<S: AdmissionShard>(
        &mut self,
        engine: &mut ShardedAdmission<S>,
        at: Time,
        event: WorkloadEvent,
        observer: &mut impl FnMut(&ShardedAdmission<S>, &Decision),
    ) {
        let decision = engine.handle_event(&event);
        if decision.is_admission() {
            if let Some(lease) = self.config.lease {
                let due = at + lease;
                self.lease_deadlines.insert(event.task_id(), due);
                self.schedule(due, EngineEvent::DeadlineExpire(event.task_id()));
            }
        } else if matches!(event, WorkloadEvent::Depart(_)) {
            // Explicit (or synthesized) departures retire the lease.
            self.lease_deadlines.remove(&event.task_id());
        }
        self.log.push(TimedEvent { at, event });
        observer(engine, &decision);
    }

    /// Handles a [`WorkloadEvent::Renew`]: extends the task's live lease
    /// deadline and schedules the matching expiration. Renewals never
    /// reach the engine — they are logged as processed and counted, but
    /// make no admission decision. Renewals of non-resident tasks (or in
    /// lease-free runs) extend nothing.
    fn renew<S: AdmissionShard>(&mut self, engine: &ShardedAdmission<S>, at: Time, id: TaskId) {
        if let Some(lease) = self.config.lease {
            if engine.resident_shard(id).is_some() && self.lease_deadlines.contains_key(&id) {
                let due = at + lease;
                self.lease_deadlines.insert(id, due);
                self.schedule(due, EngineEvent::DeadlineExpire(id));
                self.lease_renewals += 1;
            }
        }
        self.log.push(TimedEvent {
            at,
            event: WorkloadEvent::Renew(id),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AdmissionController, ChurnGenerator, OnlineConfig};

    fn run_trace(
        shards: usize,
        seed: u64,
        config: EventLoopConfig,
    ) -> (EventLoop, ShardedAdmission) {
        let trace = ChurnGenerator::new()
            .cores(4)
            .events(150)
            .seed(seed)
            .generate_timed()
            .unwrap();
        let mut engine = ShardedAdmission::new(OnlineConfig::new(4), shards).unwrap();
        let mut event_loop = EventLoop::new(config);
        event_loop.load_trace(&trace);
        event_loop.run(&mut engine);
        (event_loop, engine)
    }

    #[test]
    fn runs_are_reproducible_and_shard_count_invariant_in_events() {
        let config = EventLoopConfig::new(42);
        let (loop_a, engine_a) = run_trace(1, 9, config);
        let (loop_b, engine_b) = run_trace(1, 9, config);
        assert_eq!(loop_a.event_log(), loop_b.event_log());
        assert_eq!(engine_a.decisions(), engine_b.decisions());
        // Without leases the processed stream does not depend on shard
        // count, only the decisions may.
        let (loop_c, _) = run_trace(2, 9, config);
        assert_eq!(loop_a.event_log(), loop_c.event_log());
    }

    #[test]
    fn one_shard_run_replays_byte_identically_on_the_legacy_controller() {
        let (event_loop, engine) = run_trace(1, 5, EventLoopConfig::new(7));
        let events: Vec<WorkloadEvent> = event_loop
            .event_log()
            .iter()
            .map(|t| t.event.clone())
            .collect();
        let mut legacy = AdmissionController::new(OnlineConfig::new(4)).unwrap();
        let legacy_decisions = legacy.handle_all(&events);
        assert_eq!(engine.decisions(), legacy_decisions.as_slice());
    }

    #[test]
    fn leases_synthesize_departures() {
        let config = EventLoopConfig::new(3).with_lease(Some(Time::from_millis(50)));
        let (event_loop, engine) = run_trace(2, 11, config);
        assert!(
            engine.stats().lease_expirations > 0,
            "short leases must expire"
        );
        // Every lease expiry shows up in the log as a departure, so the
        // log remains a faithful, replayable workload stream.
        let synthesized = engine.stats().lease_expirations;
        let departs = event_loop
            .event_log()
            .iter()
            .filter(|t| !t.event.is_arrival())
            .count() as u64;
        assert!(departs >= synthesized);
        // Processed count matches the engine's decision log 1:1.
        assert_eq!(event_loop.event_log().len(), engine.decisions().len());
    }

    #[test]
    fn renewals_extend_leases_and_stale_expirations_are_screened() {
        // One task, lease 50 ms, a renewal at 30 ms: the original
        // expiration at 50 ms is stale (the live deadline moved to
        // 80 ms) and must not fire; the renewed one at 80 ms must.
        let t = spms_task::Task::new(0, Time::from_millis(1), Time::from_millis(10)).unwrap();
        let mut engine = ShardedAdmission::new(OnlineConfig::new(2), 1).unwrap();
        let mut event_loop =
            EventLoop::new(EventLoopConfig::new(0).with_lease(Some(Time::from_millis(50))));
        event_loop.schedule(
            Time::ZERO,
            EngineEvent::Workload(WorkloadEvent::Arrive(t.clone())),
        );
        event_loop.schedule(
            Time::from_millis(30),
            EngineEvent::Workload(WorkloadEvent::Renew(t.id())),
        );
        event_loop.run(&mut engine);
        assert_eq!(event_loop.lease_renewals(), 1);
        assert_eq!(engine.stats().lease_expirations, 1);
        assert_eq!(
            engine.admitted_count(),
            0,
            "the renewed lease still ran out"
        );
        let log: Vec<(Time, bool, bool)> = event_loop
            .event_log()
            .iter()
            .map(|e| (e.at, e.event.is_arrival(), e.event.is_renewal()))
            .collect();
        assert_eq!(
            log,
            vec![
                (Time::ZERO, true, false),
                (Time::from_millis(30), false, true),
                // The synthesized departure fires at the *renewed*
                // deadline, not the stale 50 ms one.
                (Time::from_millis(80), false, false),
            ]
        );
    }

    #[test]
    fn renewal_heartbeats_suppress_lease_expirations() {
        let trace = crate::ChurnGenerator::new()
            .cores(4)
            .events(150)
            .seed(11)
            .generate_timed()
            .unwrap();
        let lease = Time::from_millis(50);
        let run = |trace: &[TimedEvent]| {
            let mut engine = ShardedAdmission::new(OnlineConfig::new(4), 2).unwrap();
            let mut event_loop = EventLoop::new(EventLoopConfig::new(3).with_lease(Some(lease)));
            event_loop.load_trace(trace);
            event_loop.run(&mut engine);
            (event_loop, engine)
        };
        let (_, walled) = run(&trace);
        let renewed_trace = crate::inject_renewals(&trace, Time::from_millis(40));
        let (renewed_loop, renewed) = run(&renewed_trace);
        assert!(walled.stats().lease_expirations > 0);
        assert!(renewed_loop.lease_renewals() > 0);
        assert!(
            renewed.stats().lease_expirations < walled.stats().lease_expirations,
            "heartbeats must keep residents alive past the bare lease ({} !< {})",
            renewed.stats().lease_expirations,
            walled.stats().lease_expirations
        );
        // Every trace event (renewals included) is logged as processed;
        // synthesized lease departures only add to that.
        assert!(renewed_loop.event_log().len() >= renewed_trace.len());
    }

    #[test]
    fn renewals_without_leases_are_logged_noops() {
        let t = spms_task::Task::new(0, Time::from_millis(1), Time::from_millis(10)).unwrap();
        let mut engine = ShardedAdmission::new(OnlineConfig::new(2), 1).unwrap();
        let mut event_loop = EventLoop::new(EventLoopConfig::new(0));
        event_loop.schedule(
            Time::ZERO,
            EngineEvent::Workload(WorkloadEvent::Arrive(t.clone())),
        );
        event_loop.schedule(
            Time::from_millis(5),
            EngineEvent::Workload(WorkloadEvent::Renew(t.id())),
        );
        event_loop.run(&mut engine);
        assert_eq!(event_loop.lease_renewals(), 0);
        assert_eq!(event_loop.event_log().len(), 2);
        assert_eq!(engine.admitted_count(), 1, "no lease, no expiration");
        // The renewal never reached the engine: one decision only.
        assert_eq!(engine.decisions().len(), 1);
    }

    #[test]
    fn rebalance_ticks_fire_and_terminate() {
        let config = EventLoopConfig::new(1)
            .with_rebalance_period(Some(Time::from_millis(20)))
            .with_rebalance_max_moves(2);
        let (_, engine) = run_trace(2, 13, config);
        assert!(engine.stats().rebalance_ticks > 0);
        // The loop terminated (we are here) even though ticks reschedule
        // themselves: they stop once the workload drains.
        // Every tick is visible in the metrics, no-op or not.
        let merged = engine.merged_metrics_registry();
        assert_eq!(
            merged.counter_by_name("spms_mech_rebalance_ticks_total"),
            Some(engine.stats().rebalance_ticks)
        );
        assert_eq!(
            merged.counter_by_name("spms_mech_rebalance_moves_total"),
            Some(engine.stats().rebalance_moves)
        );
        assert_eq!(
            engine.metrics().rebalance_history().count() as u64,
            engine
                .stats()
                .rebalance_ticks
                .min(crate::metrics::REBALANCE_HISTORY_CAPACITY as u64)
        );
    }

    #[test]
    fn rebalance_ticks_capture_periodic_snapshots_when_enabled() {
        let config = EventLoopConfig::new(1)
            .with_rebalance_period(Some(Time::from_millis(20)))
            .with_rebalance_snapshots(true);
        let (event_loop, engine) = run_trace(2, 13, config);
        let ticks = engine.stats().rebalance_ticks as usize;
        assert!(ticks > 0);
        assert_eq!(
            event_loop.tick_snapshots().len(),
            ticks.min(TICK_SNAPSHOT_CAPACITY)
        );
        // Snapshots are deterministic-section only and cumulative: the
        // retained window covers the *last* ticks, so the k-th retained
        // snapshot's tick counter reads dropped + k + 1.
        let dropped = ticks - event_loop.tick_snapshots().len();
        for (i, (at, snapshot)) in event_loop.tick_snapshots().iter().enumerate() {
            assert!(*at > Time::ZERO);
            assert!(snapshot
                .entries
                .iter()
                .all(|e| !e.name.starts_with("spms_timing_")));
            let ticks_entry = snapshot
                .entries
                .iter()
                .find(|e| e.name == "spms_mech_rebalance_ticks_total")
                .expect("tick counter present");
            assert_eq!(
                ticks_entry.value,
                spms_telemetry::SnapshotValue::Counter((dropped + i) as u64 + 1)
            );
        }
        // Without the flag, no snapshots accrue.
        let (quiet, _) = run_trace(
            2,
            13,
            EventLoopConfig::new(1).with_rebalance_period(Some(Time::from_millis(20))),
        );
        assert!(quiet.tick_snapshots().is_empty());
    }

    #[test]
    fn tie_shuffle_depends_only_on_the_seed() {
        // Two events at the same timestamp: order decided by the seed.
        let t_a = spms_task::Task::new(0, Time::from_millis(1), Time::from_millis(10)).unwrap();
        let t_b = spms_task::Task::new(1, Time::from_millis(1), Time::from_millis(10)).unwrap();
        let order_for = |seed: u64| {
            let mut engine = ShardedAdmission::new(OnlineConfig::new(2), 1).unwrap();
            let mut event_loop = EventLoop::new(EventLoopConfig::new(seed));
            let at = Time::from_millis(5);
            event_loop.schedule(
                at,
                EngineEvent::Workload(WorkloadEvent::Arrive(t_a.clone())),
            );
            event_loop.schedule(
                at,
                EngineEvent::Workload(WorkloadEvent::Arrive(t_b.clone())),
            );
            event_loop.run(&mut engine);
            let ids: Vec<_> = event_loop
                .event_log()
                .iter()
                .map(|t| t.event.task_id())
                .collect();
            ids
        };
        let baseline = order_for(0);
        assert_eq!(baseline, order_for(0), "same seed, same order");
        assert!(
            (0..64).any(|seed| order_for(seed) != baseline),
            "some seed must flip the tie order"
        );
    }

    #[test]
    fn zero_move_rebalance_ticks_back_off_exponentially() {
        // A single-shard service can never move a task, so every tick is
        // a zero-move tick: with backoff enabled the self-rescheduled
        // interval doubles per idle tick, clamped at 2^3 = 8x the base
        // period. Snapshot timestamps expose the actual tick schedule.
        let period = Time::from_millis(10);
        let run = |backoff: bool| {
            let mut engine = ShardedAdmission::new(OnlineConfig::new(2), 1).unwrap();
            let mut event_loop = EventLoop::new(
                EventLoopConfig::new(0)
                    .with_rebalance_period(Some(period))
                    .with_rebalance_snapshots(true)
                    .with_rebalance_backoff(backoff),
            );
            for i in 0..31u32 {
                event_loop.schedule(
                    Time::from_millis(u64::from(i) * 10),
                    EngineEvent::Workload(WorkloadEvent::Arrive(
                        spms_task::Task::new(i, Time::from_millis(1), Time::from_millis(1000))
                            .unwrap(),
                    )),
                );
            }
            event_loop.run(&mut engine);
            let ticks: Vec<u64> = event_loop
                .tick_snapshots()
                .iter()
                .map(|(at, _)| at.as_nanos() / 1_000_000)
                .collect();
            ticks
        };
        // Idle streak 1, 2, 3, then clamped: gaps 2x, 4x, 8x, 8x, ...
        assert_eq!(run(true), vec![10, 30, 70, 150, 230, 310]);
        // Without backoff the schedule stays on the plain period.
        let plain = run(false);
        assert_eq!(plain.first(), Some(&10));
        assert!(plain.windows(2).all(|w| w[1] - w[0] == 10));
    }

    #[test]
    fn a_rebalance_move_resets_the_backoff_streak() {
        // Pile every task onto shard 0 (home-shard routing by parity of
        // the id hash is irrelevant: we pick ids homed on shard 0), let
        // idle ticks stretch the interval, then check that a tick which
        // does move a task snaps the schedule back to the base period.
        // Driving a mid-run imbalance deterministically through the
        // public API is awkward, so this asserts the reset property at
        // the unit level instead: a non-zero move count resets the
        // streak the next tick uses.
        let period = Time::from_millis(10);
        let mut engine = ShardedAdmission::new(OnlineConfig::new(4), 2).unwrap();
        let router = spms_core::ShardRouter::new(2);
        // Four tasks homed on shard 0 arriving up front, nothing after:
        // the first tick can steal one to shard 1, later ticks cannot.
        let mut scheduled = 0u64;
        let mut id = 0u32;
        let mut event_loop = EventLoop::new(
            EventLoopConfig::new(0)
                .with_rebalance_period(Some(period))
                .with_rebalance_max_moves(1)
                .with_rebalance_snapshots(true)
                .with_rebalance_backoff(true),
        );
        while scheduled < 4 {
            if router.home_shard(TaskId(id)) == 0 {
                event_loop.schedule(
                    Time::ZERO,
                    EngineEvent::Workload(WorkloadEvent::Arrive(
                        spms_task::Task::new(id, Time::from_millis(2), Time::from_millis(10))
                            .unwrap(),
                    )),
                );
                scheduled += 1;
            }
            id += 1;
        }
        // Keep the loop alive long enough for several ticks.
        event_loop.schedule(
            Time::from_millis(100),
            EngineEvent::Workload(WorkloadEvent::Arrive(
                spms_task::Task::new(1000, Time::from_millis(1), Time::from_millis(1000)).unwrap(),
            )),
        );
        event_loop.run(&mut engine);
        let ticks: Vec<u64> = event_loop
            .tick_snapshots()
            .iter()
            .map(|(at, _)| at.as_nanos() / 1_000_000)
            .collect();
        assert!(engine.stats().rebalance_moves > 0, "early ticks must steal");
        // Ticks at 10 and 20 ms each steal a task (budget 1 per tick), so
        // the schedule stays on the plain period; the tick at 30 ms finds
        // the shards balanced and the first idle tick doubles the gap.
        assert!(ticks.len() >= 4);
        assert_eq!(&ticks[..4], &[10, 20, 30, 50]);
    }

    #[test]
    fn loaded_faults_fire_and_timed_faults_end() {
        use spms_faults::{FaultEvent, FaultPlan};
        let mut plan = FaultPlan::new();
        plan.push(FaultEvent {
            at_ms: 20,
            kind: FaultKind::ShardStall { shard: 0, ms: 30 },
        });
        plan.push(FaultEvent {
            at_ms: 25,
            kind: FaultKind::CostSpike { factor: 4, ms: 10 },
        });
        let mut engine = ShardedAdmission::new(OnlineConfig::new(4), 2).unwrap();
        let mut event_loop = EventLoop::new(EventLoopConfig::new(0));
        event_loop.load_faults(&plan);
        // Faults alone are not pending workload; add real arrivals that
        // straddle the fault windows.
        for (i, at) in [0u64, 30, 80].iter().enumerate() {
            event_loop.schedule(
                Time::from_millis(*at),
                EngineEvent::Workload(WorkloadEvent::Arrive(
                    spms_task::Task::new(i as u32, Time::from_millis(1), Time::from_millis(100))
                        .unwrap(),
                )),
            );
        }
        event_loop.run(&mut engine);
        assert_eq!(engine.fault_stats().injections, 2);
        assert_eq!(engine.fault_stats().stalls, 1);
        assert_eq!(engine.fault_stats().cost_spikes, 1);
        // Both timed faults ended before the loop drained.
        assert_eq!(engine.cost_spike_factor(), 1);
        assert!(engine
            .shard_health()
            .iter()
            .all(|h| *h == crate::ShardHealth::Healthy));
    }
}
