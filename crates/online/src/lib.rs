//! # spms-online
//!
//! Online admission control and incremental semi-partitioned repartitioning
//! under task churn.
//!
//! The paper — like most of the semi-partitioned literature — treats
//! partitioning as an offline problem: a fixed task set is partitioned once
//! and then analysed. Real deployments face a *stream* of task arrivals and
//! departures and must answer admit/reject quickly while keeping the
//! admitted set schedulable. This crate layers that capability on the
//! offline machinery:
//!
//! * [`WorkloadEvent`] — the arrive/depart event stream,
//! * [`AdmissionController`] — maintains a live, always-schedulable
//!   [`Partition`](spms_core::Partition) via a cascade of incremental
//!   first-fit placement, FP-TS-style splitting of the arrival, bounded
//!   repair (relocating at most `k` placed tasks), and a full offline
//!   repartition as the last resort,
//! * [`ChurnGenerator`] — seeded Poisson or Markov-modulated bursty
//!   arrivals ([`ChurnFamily`]) with log-uniform lifetimes targeting a
//!   configurable offered load,
//! * [`replay`](mod@replay) — feeds each admitted epoch through the
//!   `spms-sim` discrete-event simulator to confirm zero deadline misses,
//! * [`ShardedAdmission`] / [`AdmissionShard`] — the fleet-scale service:
//!   N independent controller shards behind a hash + utilization-aware
//!   [`ShardRouter`](spms_core::ShardRouter) with cross-shard overflow
//!   placement and periodic work-stealing rebalance,
//! * [`EventLoop`] — the timestamped event heap driving the service
//!   (arrivals, departures, deadline expirations, rebalance ticks) with a
//!   seeded same-timestamp tie-shuffle for reproducible runs,
//! * [`EngineMetrics`] — the telemetry bundle every engine carries: a
//!   deterministic [`spms_telemetry::Registry`] (outcome and mechanism
//!   counters plus strippable timing histograms), per-decision cascade
//!   stage traces in a bounded ring, and the rebalance tick history.
//!
//! # Example
//!
//! ```
//! use spms_online::{AdmissionController, ChurnGenerator, OnlineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let events = ChurnGenerator::new()
//!     .cores(4)
//!     .target_normalized_utilization(0.6)
//!     .events(40)
//!     .seed(1)
//!     .generate()?;
//! let mut controller = AdmissionController::new(OnlineConfig::new(4))?;
//! controller.handle_all(&events);
//! assert!(controller.partition().is_schedulable(controller.config().test));
//! assert!(controller.stats().acceptance_ratio() > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod churn;
mod controller;
mod event;
mod event_loop;
pub mod metrics;
pub mod replay;
mod service;

pub use churn::{inject_renewals, ChurnFamily, ChurnGenerator};
pub use controller::{
    AdmissionController, ControllerStats, Decision, DecisionKind, DecisionPath, DegradePolicy,
    OnlineConfig, OnlineConfigBuilder, OnlineError, RejectionReason, RepairRanking,
};
pub use event::{parse_trace, TimedEvent, TraceError, WorkloadEvent};
pub use event_loop::{
    EngineEvent, EventLoop, EventLoopConfig, MAX_REBALANCE_BACKOFF_SHIFT, TICK_SNAPSHOT_CAPACITY,
};
pub use metrics::{EngineMetrics, RebalanceTick, DEFAULT_TRACE_RING_CAPACITY};
pub use replay::{run_trace, ReplayConfig, ReplayOutcome};
pub use service::{AdmissionShard, FaultStats, ServiceStats, ShardHealth, ShardedAdmission};
