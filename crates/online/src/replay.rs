//! Simulation replay of admitted epochs.
//!
//! The admission controller's guarantee is analytical: every admitted
//! configuration passes the per-core acceptance test. The replay hook turns
//! that into an executable check by feeding each *epoch* — the partition as
//! it stands after a partition-changing decision — through the
//! discrete-event simulator in `spms-sim` and counting deadline misses.
//! An analysis accepted by exact RTA must simulate cleanly, so any miss is
//! a bug in either the controller or the analysis; the churn experiment and
//! the `spms online` CLI surface the counter so CI can assert it stays
//! zero.

use serde::{Deserialize, Serialize};
use spms_analysis::OverheadModel;
use spms_core::Partition;
use spms_sim::{SimulationConfig, Simulator};
use spms_task::Time;

use crate::{AdmissionController, Decision, WorkloadEvent};

/// Configuration of the epoch replay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayConfig {
    /// How much scheduling time to simulate per epoch.
    pub duration: Time,
    /// Overheads injected by the simulator at run time (independent of the
    /// analysis-side inflation the controller applies).
    pub overhead: OverheadModel,
    /// Maximum seeded sporadic release jitter per job: each release is
    /// delayed by a uniform draw in `[0, release_jitter]`, stretching
    /// inter-arrival times (the sporadic task model the analysis covers).
    /// Zero replays synchronous-periodic.
    pub release_jitter: Time,
    /// Seed of the jitter stream (ignored when the jitter is zero).
    pub jitter_seed: u64,
}

impl ReplayConfig {
    /// Replays each epoch for `duration` with no injected overhead and
    /// synchronous-periodic releases.
    pub fn new(duration: Time) -> Self {
        ReplayConfig {
            duration,
            overhead: OverheadModel::zero(),
            release_jitter: Time::ZERO,
            jitter_seed: 0,
        }
    }

    /// Sets the injected overhead model (builder style).
    pub fn with_overhead(mut self, overhead: OverheadModel) -> Self {
        self.overhead = overhead;
        self
    }

    /// Sets the seeded sporadic release jitter (builder style). Releases
    /// only ever get delayed, so an analysis-accepted epoch must still
    /// simulate cleanly — the knob stresses sporadic arrivals end-to-end.
    pub fn with_release_jitter(mut self, jitter: Time, seed: u64) -> Self {
        self.release_jitter = jitter;
        self.jitter_seed = seed;
        self
    }
}

/// Accumulated replay results over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReplayOutcome {
    /// Epochs simulated.
    pub epochs: u64,
    /// Deadline misses observed across all epochs (must stay 0 for
    /// controllers using the exact RTA acceptance test).
    pub deadline_misses: u64,
    /// Jobs completed across all epochs.
    pub jobs_completed: u64,
    /// Cross-core migrations of split tasks observed across all epochs.
    pub migrations: u64,
}

/// Simulates one partition for `config.duration` and folds the result into
/// an outcome.
pub fn replay_epoch(partition: &Partition, config: &ReplayConfig) -> ReplayOutcome {
    if partition.placement_count() == 0 {
        return ReplayOutcome {
            epochs: 1,
            ..ReplayOutcome::default()
        };
    }
    let mut sim_config = SimulationConfig::new(config.duration).with_overhead(config.overhead);
    if !config.release_jitter.is_zero() {
        sim_config = sim_config.with_release_jitter(config.release_jitter, config.jitter_seed);
    }
    let report = Simulator::new(partition, sim_config).run();
    ReplayOutcome {
        epochs: 1,
        deadline_misses: report.deadline_misses.len() as u64,
        jobs_completed: report.jobs_completed,
        migrations: report.migrations,
    }
}

impl ReplayOutcome {
    /// Folds another outcome into this one.
    pub fn absorb(&mut self, other: ReplayOutcome) {
        self.epochs += other.epochs;
        self.deadline_misses += other.deadline_misses;
        self.jobs_completed += other.jobs_completed;
        self.migrations += other.migrations;
    }
}

/// Drives a controller through an event stream, optionally replaying every
/// epoch whose admission changed the partition. Returns the per-event
/// decisions and the accumulated replay outcome (zero-valued when `replay`
/// is `None`).
pub fn run_trace(
    controller: &mut AdmissionController,
    events: &[WorkloadEvent],
    replay: Option<&ReplayConfig>,
) -> (Vec<Decision>, ReplayOutcome) {
    let mut outcome = ReplayOutcome::default();
    let mut decisions = Vec::with_capacity(events.len());
    for event in events {
        let decision = controller.handle_event(event);
        if decision.is_admission() {
            if let Some(config) = replay {
                outcome.absorb(replay_epoch(controller.partition(), config));
            }
        }
        decisions.push(decision);
    }
    (decisions, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChurnGenerator, OnlineConfig};

    #[test]
    fn empty_partition_replays_cleanly() {
        let outcome = replay_epoch(
            &Partition::new(2),
            &ReplayConfig::new(Time::from_millis(10)),
        );
        assert_eq!(outcome.epochs, 1);
        assert_eq!(outcome.deadline_misses, 0);
    }

    #[test]
    fn admitted_epochs_simulate_without_misses() {
        let events = ChurnGenerator::new()
            .cores(2)
            .target_normalized_utilization(0.6)
            .events(40)
            .seed(17)
            .generate()
            .unwrap();
        let mut controller = AdmissionController::new(OnlineConfig::new(2)).unwrap();
        let replay = ReplayConfig::new(Time::from_millis(50));
        let (decisions, outcome) = run_trace(&mut controller, &events, Some(&replay));
        assert_eq!(decisions.len(), events.len());
        let admissions = decisions.iter().filter(|d| d.is_admission()).count() as u64;
        assert_eq!(outcome.epochs, admissions);
        assert!(admissions > 0, "trace admitted nothing");
        assert_eq!(
            outcome.deadline_misses, 0,
            "analysis-accepted epochs must simulate cleanly"
        );
    }

    #[test]
    fn jittered_replay_stays_miss_free_and_is_seed_deterministic() {
        // Release jitter only ever delays releases (the sporadic model the
        // RTA covers), so analysis-accepted epochs must still simulate
        // cleanly — and identically for equal jitter seeds.
        let events = ChurnGenerator::new()
            .cores(2)
            .target_normalized_utilization(0.7)
            .events(40)
            .seed(23)
            .generate()
            .unwrap();
        let run = |seed: u64| {
            let mut controller = AdmissionController::new(OnlineConfig::new(2)).unwrap();
            let replay = ReplayConfig::new(Time::from_millis(50))
                .with_release_jitter(Time::from_millis(2), seed);
            run_trace(&mut controller, &events, Some(&replay)).1
        };
        let outcome = run(7);
        assert!(outcome.epochs > 0);
        assert_eq!(
            outcome.deadline_misses, 0,
            "jitter must not break analysis-accepted epochs"
        );
        assert_eq!(
            outcome,
            run(7),
            "equal jitter seeds must replay identically"
        );
    }

    #[test]
    fn replay_disabled_reports_zero_epochs() {
        let events = ChurnGenerator::new().events(10).seed(1).generate().unwrap();
        let mut controller = AdmissionController::new(OnlineConfig::new(4)).unwrap();
        let (_, outcome) = run_trace(&mut controller, &events, None);
        assert_eq!(outcome, ReplayOutcome::default());
    }

    #[test]
    fn outcomes_accumulate() {
        let mut a = ReplayOutcome {
            epochs: 1,
            deadline_misses: 0,
            jobs_completed: 10,
            migrations: 2,
        };
        a.absorb(ReplayOutcome {
            epochs: 2,
            deadline_misses: 1,
            jobs_completed: 5,
            migrations: 0,
        });
        assert_eq!(a.epochs, 3);
        assert_eq!(a.deadline_misses, 1);
        assert_eq!(a.jobs_completed, 15);
        assert_eq!(a.migrations, 2);
    }
}
