//! The sharded admission service.
//!
//! [`ShardedAdmission`] scales the single-partition
//! [`AdmissionController`](crate::AdmissionController) to fleet-sized
//! workloads by splitting the machine's core set into N independent shards
//! ([`shard_core_counts`]), each a full admission cascade over its own
//! [`Partition`] with a private mutation journal and RTA cache. The
//! cascade is reached through the [`AdmissionShard`] trait, so the service
//! is generic over the shard implementation (the production shard is the
//! `AdmissionController` itself).
//!
//! Arrivals are routed by a [`ShardRouter`]: the deterministic home shard
//! is offered the task first, and when it rejects, the remaining shards
//! are tried in descending spare-utilization order (*cross-shard overflow
//! placement*). Departures go straight to the task's resident shard. A
//! periodic [`rebalance`](ShardedAdmission::rebalance) pass work-steals
//! whole-placed tasks from the most-loaded shard to the most-spare one
//! (see [`rebalance_partitions`]), keeping overflow rare as churn skews
//! the load.
//!
//! With one shard the service adds no policy at all: every event reaches
//! the single controller exactly as a direct `handle_event` call would,
//! and the service decision log is byte-identical to the legacy
//! controller's on the same event stream (enforced by the
//! `shard_equivalence` test suite).

use std::collections::BTreeMap;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use spms_core::{
    rebalance_partitions, shard_core_counts, CacheAuditVerdict, CoreId, IncrementalPlacer,
    Partition, PlacedTask, PlanTxn, ShardRouter, SplitInfo, SubtaskKind,
};
use spms_faults::FaultKind;
use spms_overhead::{CostModel, CostModelSpec};
use spms_task::{Task, TaskId, Time};
use spms_telemetry::{scoped, Histogram, MetricClass, Registry};

use crate::metrics::EngineMetrics;
use crate::{
    AdmissionController, ControllerStats, Decision, DecisionKind, DecisionPath, OnlineConfig,
    OnlineError, RejectionReason, WorkloadEvent,
};

/// The decision cascade of one admission shard, as the service consumes
/// it: decide events, report capacity, and expose the bookkeeping hooks
/// the cross-shard rebalancer needs.
///
/// The production implementation is [`AdmissionController`]; the trait
/// exists so the service layer (routing, overflow, rebalancing, the event
/// loop) is independent of the cascade internals and testable against
/// mock shards.
///
/// The `partition_mut` / `forget_admitted` / `note_admitted` trio is
/// rebalancer plumbing: the service moves a task's placements between
/// shard partitions and then patches both shards' admission bookkeeping.
/// Calling `partition_mut` without maintaining that bookkeeping breaks
/// the shard's invariants.
pub trait AdmissionShard {
    /// Decides one workload event, recording it in the shard's own log.
    fn decide(&mut self, event: &WorkloadEvent) -> Decision;
    /// Whether this shard currently hosts the task.
    fn resident(&self, id: TaskId) -> bool;
    /// Total utilization of the tasks admitted on this shard (original
    /// parameters, not overhead-inflated).
    fn admitted_utilization(&self) -> f64;
    /// Number of processor cores this shard owns.
    fn core_count(&self) -> usize;
    /// The shard's live partition.
    fn partition(&self) -> &Partition;
    /// Mutable access to the shard's partition (rebalancer plumbing).
    fn partition_mut(&mut self) -> &mut Partition;
    /// The admitted copy (original parameters) of one task, if resident.
    fn lookup_admitted(&self, id: TaskId) -> Option<Task>;
    /// Drops a task from the shard's admission bookkeeping without
    /// touching the partition (rebalancer plumbing).
    fn forget_admitted(&mut self, id: TaskId) -> Option<Task>;
    /// Registers a task in the shard's admission bookkeeping without
    /// touching the partition (rebalancer plumbing).
    fn note_admitted(&mut self, task: Task);
    /// The placer whose policy governs this shard's placements.
    fn placer(&self) -> &IncrementalPlacer;

    /// The shard's metrics registry, if it keeps one. The service folds
    /// the mechanism and timing sections of every shard registry into its
    /// [merged view](ShardedAdmission::merged_metrics_registry); outcome
    /// counters stay with the service's own final-decision stream (a
    /// shard's outcome counters describe per-shard `decide` attempts,
    /// which overflow retries would double-count).
    fn metrics_registry(&self) -> Option<&Registry> {
        None
    }

    /// The migration cost model this shard charges (the rebalancer charges
    /// cross-shard moves with the same model). Free by default.
    fn cost_model(&self) -> CostModelSpec {
        CostModelSpec::Zero
    }

    /// Spare capacity of this shard: cores minus admitted utilization,
    /// clamped at zero.
    fn spare_utilization(&self) -> f64 {
        (self.core_count() as f64 - self.admitted_utilization()).max(0.0)
    }

    // --------------------------------------------------------------
    // cross-shard split planning (piece-level entry points)
    // --------------------------------------------------------------

    /// Plans the *body* piece of a shard-spanning split on this shard:
    /// binary-searches the largest schedulable body budget over this
    /// shard's cores (most-spare first), with `charge` — the cross-shard
    /// migration cost — folded into the piece's analysis WCET. Pure: the
    /// partition is not mutated. Returns the hosting core, the analysis
    /// piece and the chosen runtime budget.
    fn plan_remote_body(&self, task: &Task, charge: Time) -> Option<(CoreId, Task, Time)> {
        self.placer()
            .plan_remote_body(self.partition(), task, charge)
    }

    /// Plans the *tail* piece of a shard-spanning split on this shard:
    /// `budget` is the execution left after the remote body, `offset` the
    /// tail's release offset (the body's analysis WCET), `charge` the
    /// cross-shard migration cost folded into the tail's WCET. Pure.
    fn plan_remote_tail(
        &self,
        task: &Task,
        budget: Time,
        offset: Time,
        charge: Time,
    ) -> Option<(CoreId, Task)> {
        self.placer()
            .plan_remote_tail(self.partition(), task, budget, offset, charge)
    }

    /// Places one planned cross-shard piece on this shard's partition and
    /// renormalizes the core's priorities. The caller wraps donor and
    /// receiver in one [`PlanTxn`] so a refused piece rewinds every
    /// participant.
    fn commit_remote_piece(&mut self, core: CoreId, placed: PlacedTask) {
        self.partition_mut().place(core, placed);
        self.partition_mut().renormalize_core_priorities(core);
    }

    /// Registers a cross-shard *piece* in this shard's admission
    /// bookkeeping (the piece-shaped analysis task, so the shard's
    /// utilization accounting reflects only its local share). Shards that
    /// track remote parents separately override this to also pin the
    /// parent against local repair relocation.
    fn note_remote_admitted(&mut self, piece: Task) {
        self.note_admitted(piece);
    }
}

/// Aggregate counters of a [`ShardedAdmission`] service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceStats {
    /// Service-level decision counters (one entry per workload event the
    /// service handled, regardless of how many shards were offered it).
    pub decisions: ControllerStats,
    /// Admissions that landed on a shard other than the task's home shard
    /// (the home shard rejected, an overflow shard accepted).
    pub overflow_admissions: u64,
    /// Rebalance passes run.
    pub rebalance_ticks: u64,
    /// Tasks migrated between shards by rebalance passes.
    pub rebalance_moves: u64,
    /// Departures synthesized by lease expiry (event-loop deadline
    /// expirations, not part of the workload trace).
    pub lease_expirations: u64,
    /// Admissions placed by the cross-shard split planner (body on one
    /// shard, tail on another) after every shard's own cascade rejected.
    pub cross_shard_admissions: u64,
}

/// Lifecycle state of one shard under fault injection. Every shard is
/// `Healthy` until a [`FaultKind`] targets it; with no faults loaded the
/// state never changes and the service behaves bit-identically to a
/// fault-free build.
///
/// Transitions: `Healthy → Stalled` (stall; reverts on the fault's end),
/// `Healthy → Down` (crash; residency drained onto survivors),
/// `Down → Rejoining` (the down interval elapsed; the shard rebuilt
/// itself from the residency map — empty, since the crash drained it),
/// `Rejoining → Healthy` (the router offered it work again).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ShardHealth {
    /// In the placement rotation, holding its residents.
    Healthy,
    /// Frozen: keeps its residents but takes no new placements.
    Stalled,
    /// Crashed: drained, out of the rotation entirely.
    Down,
    /// Back up and placement-eligible; flips to `Healthy` at the next
    /// arrival the router routes past it.
    Rejoining,
}

impl ShardHealth {
    /// Whether the placement router may offer this shard new work.
    pub fn accepts_placements(self) -> bool {
        matches!(self, ShardHealth::Healthy | ShardHealth::Rejoining)
    }
}

/// Fault-injection and recovery counters of a [`ShardedAdmission`]
/// service. Kept separate from [`ServiceStats`] so fault-free reports
/// stay byte-identical (`ServiceStats` is embedded in serialized soak
/// reports; this struct is only serialized by the chaos harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Faults injected, all kinds.
    pub injections: u64,
    /// Shard crashes applied.
    pub crashes: u64,
    /// Shard stalls applied.
    pub stalls: u64,
    /// Cache corruptions applied.
    pub corruptions: u64,
    /// Cost spikes applied.
    pub cost_spikes: u64,
    /// Tasks drained off crashed shards.
    pub drained: u64,
    /// Drained tasks re-admitted onto surviving shards.
    pub recoveries: u64,
    /// Drained tasks no survivor could host ([`DecisionKind::EvictedOnFailure`]).
    pub evictions: u64,
    /// Crashed shards that rejoined the rotation.
    pub rejoins: u64,
    /// Self-audit passes run (one cached core re-verified per pass).
    pub audit_checks: u64,
    /// Audits that caught a cache/scratch mismatch.
    pub audit_violations: u64,
    /// Mismatched caches rebuilt from scratch (always equals
    /// `audit_violations`: detection and repair are one step).
    pub audit_repairs: u64,
}

impl FaultStats {
    /// Accumulates another engine's counters into this one (experiment
    /// drivers folding per-trace engines into a per-point summary).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.injections += other.injections;
        self.crashes += other.crashes;
        self.stalls += other.stalls;
        self.corruptions += other.corruptions;
        self.cost_spikes += other.cost_spikes;
        self.drained += other.drained;
        self.recoveries += other.recoveries;
        self.evictions += other.evictions;
        self.rejoins += other.rejoins;
        self.audit_checks += other.audit_checks;
        self.audit_violations += other.audit_violations;
        self.audit_repairs += other.audit_repairs;
    }

    /// Audit violations the run failed to repair (must stay 0: detection
    /// and rebuild are one step, so anything else is a harness bug).
    pub fn audit_violations_unrepaired(&self) -> u64 {
        self.audit_violations.saturating_sub(self.audit_repairs)
    }
}

/// A sharded admission service over N independent [`AdmissionShard`]s.
/// See the [module docs](self) for the routing and rebalancing policy.
#[derive(Debug, Clone)]
pub struct ShardedAdmission<S: AdmissionShard = AdmissionController> {
    shards: Vec<S>,
    router: ShardRouter,
    /// Shards currently holding each task, primary (body/home) shard
    /// first. Whole admissions occupy exactly one shard; a cross-shard
    /// split lists the donor (body) then the receiver (tail), and a
    /// departure fans out to every listed shard.
    resident: BTreeMap<TaskId, Vec<usize>>,
    /// Whether the cross-shard split planner runs when every shard's own
    /// cascade rejected an arrival. Requires at least two shards and
    /// shards whose partitions accept partial chains.
    cross_shard: bool,
    decisions: Vec<Decision>,
    metrics: EngineMetrics,
    stats: ServiceStats,
    next_event: usize,
    /// Per-shard lifecycle state, shard-index order. All `Healthy` until
    /// a fault targets a shard; see [`ShardHealth`].
    health: Vec<ShardHealth>,
    /// Original (unsplit) parameters of cross-shard-split tasks. A whole
    /// admission's original is recoverable from its shard's bookkeeping
    /// (`lookup_admitted`), but a split shard stores only its own
    /// piece-shaped analysis task — crash recovery needs the real task to
    /// re-admit, so the service pins it here until departure.
    split_originals: BTreeMap<TaskId, Task>,
    fault_stats: FaultStats,
    /// Multiplier on the cross-shard migration charge (1 = no spike).
    cost_spike_factor: u32,
    /// Round-robin cursor over the flattened (shard, core) space for
    /// [`audit_tick`](Self::audit_tick).
    audit_cursor: usize,
}

impl ShardedAdmission<AdmissionController> {
    /// A service of `shard_count` controller shards splitting the
    /// `config.cores` processor cores near-evenly. Every shard inherits
    /// the configuration's cascade knobs (test, overheads, repair bound,
    /// cache/journal toggles) against its own core slice.
    ///
    /// # Errors
    ///
    /// Returns [`OnlineError::InvalidShardCount`] when `shard_count` is
    /// zero or exceeds the core count, and propagates construction errors
    /// of the underlying controllers.
    pub fn new(config: OnlineConfig, shard_count: usize) -> Result<Self, OnlineError> {
        if shard_count == 0 || shard_count > config.cores {
            return Err(OnlineError::InvalidShardCount {
                shards: shard_count,
                cores: config.cores,
            });
        }
        let cross_shard = config.cross_shard_split && shard_count > 1;
        let shards = shard_core_counts(config.cores, shard_count)
            .into_iter()
            .map(|cores| {
                AdmissionController::new(OnlineConfig {
                    cores,
                    ..config.clone()
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut service = ShardedAdmission::from_shards(shards);
        service.cross_shard = cross_shard;
        Ok(service)
    }
}

impl<S: AdmissionShard> ShardedAdmission<S> {
    /// A service over pre-built shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn from_shards(shards: Vec<S>) -> Self {
        assert!(!shards.is_empty(), "service needs at least one shard");
        let router = ShardRouter::new(shards.len());
        let health = vec![ShardHealth::Healthy; shards.len()];
        ShardedAdmission {
            shards,
            router,
            resident: BTreeMap::new(),
            cross_shard: false,
            decisions: Vec::new(),
            // The service keeps no stage traces of its own (ring capacity
            // 0): per-decision cascade traces live in the shard that ran
            // the cascade.
            metrics: EngineMetrics::new(0),
            stats: ServiceStats::default(),
            next_event: 0,
            health,
            split_originals: BTreeMap::new(),
            fault_stats: FaultStats::default(),
            cost_spike_factor: 1,
            audit_cursor: 0,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, home-index order.
    pub fn shards(&self) -> &[S] {
        &self.shards
    }

    /// Whether the cross-shard split planner is enabled.
    pub fn cross_shard_enabled(&self) -> bool {
        self.cross_shard
    }

    /// Enables or disables the cross-shard split planner (builder-less
    /// services built via [`from_shards`](Self::from_shards); shards must
    /// allow partial chains on their partitions when enabling).
    pub fn set_cross_shard_split(&mut self, enabled: bool) {
        self.cross_shard = enabled && self.shards.len() > 1;
    }

    /// The *primary* shard a task currently lives on: the only shard for
    /// a whole admission, the body (donor) shard for a cross-shard split.
    pub fn resident_shard(&self, id: TaskId) -> Option<usize> {
        self.resident.get(&id).and_then(|v| v.first().copied())
    }

    /// Every shard currently holding a piece of the task, primary first.
    pub fn resident_shards(&self, id: TaskId) -> &[usize] {
        self.resident.get(&id).map_or(&[], Vec::as_slice)
    }

    /// Number of currently admitted tasks across all shards.
    pub fn admitted_count(&self) -> usize {
        self.resident.len()
    }

    /// Total utilization admitted across all shards.
    pub fn admitted_utilization(&self) -> f64 {
        self.shards.iter().map(S::admitted_utilization).sum()
    }

    /// Per-shard spare utilization, shard-index order.
    pub fn spare_utilizations(&self) -> Vec<f64> {
        self.shards.iter().map(S::spare_utilization).collect()
    }

    /// The service-level decision log, one entry per handled event.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// The service's own telemetry: outcome counters over the final
    /// decision stream, overflow/rebalance mechanism counters, and the
    /// service-level decision latency histogram. Shard-level mechanism
    /// and timing data is *not* in here — use
    /// [`merged_metrics_registry`](Self::merged_metrics_registry).
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Mutable telemetry access (drivers use it to set throughput gauges).
    pub fn metrics_mut(&mut self) -> &mut EngineMetrics {
        &mut self.metrics
    }

    /// Wall-clock service-decision latencies as a bounded histogram (one
    /// sample per handled event, timing section of the registry). Never
    /// serialized (latencies vary run-to-run; serializable reports must
    /// stay deterministic).
    pub fn decision_latency_histogram(&self) -> &Histogram {
        self.metrics.decision_latency()
    }

    /// The service registry with every shard's mechanism and timing
    /// sections folded in ([`Registry::merge_where`], shard-index order).
    /// Outcome counters come exclusively from the service's final-decision
    /// stream: a shard's outcome counters describe per-shard `decide`
    /// attempts, and a home rejection retried on an overflow shard would
    /// double-count. With one shard this registry's deterministic section
    /// is byte-identical to the legacy controller's on the same events.
    pub fn merged_metrics_registry(&self) -> Registry {
        let mut merged = self.metrics.registry().clone();
        for shard in &self.shards {
            if let Some(registry) = shard.metrics_registry() {
                merged.merge_where(registry, |class| class != MetricClass::Outcome);
            }
        }
        merged
    }

    /// Aggregate counters.
    pub fn stats(&self) -> &ServiceStats {
        &self.stats
    }

    /// Handles one workload event: arrivals are offered to shards in
    /// router order (home first, then spare-descending overflow),
    /// departures go to the resident shard. Returns the service-level
    /// decision.
    pub fn handle_event(&mut self, event: &WorkloadEvent) -> Decision {
        let started = Instant::now();
        let kind = match event {
            WorkloadEvent::Arrive(task) => self.arrive(task),
            WorkloadEvent::Depart(id) => self.depart(*id),
            // Leases live in the event loop; the service only
            // acknowledges renewals that reach it via a replayed trace.
            WorkloadEvent::Renew(_) => DecisionKind::RenewNoted,
        };
        let decision = Decision {
            event_index: self.next_event,
            task: event.task_id(),
            kind,
        };
        self.next_event += 1;
        self.decisions.push(decision);
        // `finish_decision` also drains the stage spans the cross-shard
        // planner may have opened (the ring has capacity 0, so nothing is
        // retained — per-decision traces live in the shards).
        self.metrics.finish_decision(
            u64::from(decision.task.0),
            &kind,
            started.elapsed().as_nanos() as u64,
            &Default::default(),
        );
        decision
    }

    /// Handles a whole event stream, returning the per-event decisions.
    pub fn handle_all(&mut self, events: &[WorkloadEvent]) -> Vec<Decision> {
        events.iter().map(|e| self.handle_event(e)).collect()
    }

    fn arrive(&mut self, task: &Task) -> DecisionKind {
        self.stats.decisions.arrivals += 1;
        // Any routed arrival completes pending rejoins: a Rejoining shard
        // is already placement-eligible, the state only records that the
        // router has not looked at it since it came back.
        self.complete_rejoins();
        if self.resident.contains_key(&task.id()) {
            self.stats.decisions.rejected += 1;
            return DecisionKind::Rejected {
                reason: RejectionReason::DuplicateTask,
            };
        }
        let spare = self.spare_utilizations();
        let mut order = self.router.placement_order(task.id(), &spare);
        // Stalled and down shards are out of the rotation. With every
        // shard healthy (the fault-free case) this retains everything and
        // the order — and therefore the decision log — is unchanged.
        order.retain(|&idx| self.health[idx].accepts_placements());
        let home = self.router.home_shard(task.id());
        let event = WorkloadEvent::Arrive(task.clone());
        let mut first_rejection: Option<RejectionReason> = None;
        for shard_idx in order {
            let shard_decision = self.shards[shard_idx].decide(&event);
            match shard_decision.kind {
                DecisionKind::Admitted {
                    path,
                    migrations,
                    inflation,
                } => {
                    self.resident.insert(task.id(), vec![shard_idx]);
                    let s = &mut self.stats.decisions;
                    s.admitted += 1;
                    s.migrations_caused += migrations as u64;
                    s.inflation_charged_ns =
                        s.inflation_charged_ns.saturating_add(inflation.as_nanos());
                    match path {
                        DecisionPath::FastWhole => s.fast_whole += 1,
                        DecisionPath::FastSplit => s.fast_split += 1,
                        DecisionPath::Repair => s.repairs += 1,
                        DecisionPath::FullRepartition => s.full_repartitions += 1,
                        DecisionPath::CrossShardSplit => {
                            unreachable!("a shard's own cascade cannot span shards")
                        }
                    }
                    if shard_idx != home {
                        self.stats.overflow_admissions += 1;
                        self.metrics.record_overflow_admission();
                    }
                    return shard_decision.kind;
                }
                DecisionKind::Rejected { reason } => {
                    // The home shard's verdict names the service-level
                    // reason; overflow shards only get a chance to accept.
                    if first_rejection.is_none() {
                        first_rejection = Some(reason);
                    }
                }
                DecisionKind::Departed
                | DecisionKind::DepartUnknown
                | DecisionKind::RenewNoted
                | DecisionKind::EvictedOnFailure => {
                    unreachable!("an arrival cannot produce a departure, renewal, or eviction")
                }
            }
        }
        // Every shard rejected the task whole-or-split within its own
        // walls. The cross-shard planner gets the last word: split the
        // task across the two roomiest shards under one multi-partition
        // planning transaction.
        if self.cross_shard && self.shards.len() >= 2 {
            let stage = Instant::now();
            let planned = self.try_cross_shard(task);
            self.metrics.record_stage(
                DecisionPath::CrossShardSplit,
                planned.is_some(),
                stage.elapsed().as_nanos() as u64,
            );
            if let Some(kind) = planned {
                return kind;
            }
        }
        self.stats.decisions.rejected += 1;
        DecisionKind::Rejected {
            reason: first_rejection.unwrap_or(RejectionReason::NoFeasiblePlacement),
        }
    }

    /// Plans and (two-phase) commits a shard-spanning split: the body on
    /// the highest-spare donor shard, the tail on the runner-up receiver,
    /// with the cost model's migration charge folded into *both* pieces'
    /// analysis WCETs. Planning is pure; the commit opens one [`PlanTxn`]
    /// scope per participant and aborts — rewinding both partitions
    /// bit-identically — unless both shards accept their pieces.
    fn try_cross_shard(&mut self, task: &Task) -> Option<DecisionKind> {
        self.metrics.record_cross_shard_attempt();
        // Donor = most spare, receiver = runner-up; ties break on the
        // lower shard index, keeping the choice deterministic. Stalled
        // and down shards cannot host a piece (a drained shard would
        // otherwise look maximally spare).
        let spare = self.spare_utilizations();
        let mut order: Vec<usize> = (0..self.shards.len())
            .filter(|&idx| self.health[idx].accepts_placements())
            .collect();
        if order.len() < 2 {
            return None;
        }
        order.sort_by(|a, b| {
            spare[*b]
                .partial_cmp(&spare[*a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.cmp(b))
        });
        let (donor, receiver) = (order[0], order[1]);
        // Every shard runs the same configuration, so shard 0's cost
        // model speaks for the fleet (as in `rebalance`). An active cost
        // spike multiplies the charge (factor 1 when no spike is live).
        let charge =
            self.shards[0].cost_model().migration_charge(task) * u64::from(self.cost_spike_factor);
        // Phase 1 — pure planning on both participants.
        let (body_core, body_piece, budget) = self.shards[donor].plan_remote_body(task, charge)?;
        let offset = body_piece.wcet();
        let remaining = task.wcet().saturating_sub(budget);
        let (tail_core, tail_piece) =
            self.shards[receiver].plan_remote_tail(task, remaining, offset, charge)?;
        // Phase 2 — place both pieces under one planning transaction.
        let body_placed = PlacedTask {
            task: body_piece.clone(),
            execution: budget,
            parent: task.id(),
            split: Some(SplitInfo {
                part_index: 0,
                part_count: 2,
                kind: SubtaskKind::Body,
                release_offset: Time::ZERO,
                next_core: None, // the next piece lives on another shard
                first_core: body_core,
            }),
        };
        let tail_placed = PlacedTask {
            task: tail_piece.clone(),
            execution: remaining,
            parent: task.id(),
            split: Some(SplitInfo {
                part_index: 1,
                part_count: 2,
                kind: SubtaskKind::Tail,
                release_offset: offset,
                next_core: None,
                first_core: tail_core, // shard-local: the tail is its shard's first piece
            }),
        };
        let committed = {
            let (donor_shard, receiver_shard) = two_shards_mut(&mut self.shards, donor, receiver);
            let mut txn = PlanTxn::new();
            txn.begin(donor_shard.partition_mut());
            txn.begin(receiver_shard.partition_mut());
            donor_shard.commit_remote_piece(body_core, body_placed);
            receiver_shard.commit_remote_piece(tail_core, tail_placed);
            let accepted = donor_shard.partition().validate().is_ok()
                && receiver_shard.partition().validate().is_ok();
            if accepted {
                txn.commit(&mut [donor_shard.partition_mut(), receiver_shard.partition_mut()]);
                donor_shard.note_remote_admitted(body_piece);
                receiver_shard.note_remote_admitted(tail_piece);
            } else {
                txn.abort(&mut [donor_shard.partition_mut(), receiver_shard.partition_mut()]);
            }
            accepted
        };
        if !committed {
            self.metrics.record_cross_shard_abort();
            return None;
        }
        self.resident.insert(task.id(), vec![donor, receiver]);
        self.split_originals.insert(task.id(), task.clone());
        self.metrics.record_cross_shard_admission(2);
        self.stats.cross_shard_admissions += 1;
        let inflation = charge * 2;
        let s = &mut self.stats.decisions;
        s.admitted += 1;
        s.migrations_caused += 1;
        s.inflation_charged_ns = s.inflation_charged_ns.saturating_add(inflation.as_nanos());
        Some(DecisionKind::Admitted {
            path: DecisionPath::CrossShardSplit,
            migrations: 1,
            inflation,
        })
    }

    fn depart(&mut self, id: TaskId) -> DecisionKind {
        self.split_originals.remove(&id);
        match self.resident.remove(&id) {
            Some(holders) => {
                // A cross-shard split resides on several shards: the
                // departure fans out to every holder so each drops its
                // piece(s). The primary shard's decision speaks for the
                // service.
                let mut kind = None;
                for shard_idx in holders {
                    let shard_decision = self.shards[shard_idx].decide(&WorkloadEvent::Depart(id));
                    debug_assert_eq!(shard_decision.kind, DecisionKind::Departed);
                    kind.get_or_insert(shard_decision.kind);
                }
                self.stats.decisions.departures += 1;
                kind.expect("resident map never holds an empty shard list")
            }
            None => {
                self.stats.decisions.unknown_departures += 1;
                DecisionKind::DepartUnknown
            }
        }
    }

    /// One work-stealing rebalance pass: migrates up to `max_moves`
    /// whole-placed tasks from the most-loaded shard to the most-spare
    /// one (see [`rebalance_partitions`] for the policy), then patches
    /// both shards' admission bookkeeping and the resident map. Returns
    /// the number of migrations performed. A single-shard service is a
    /// no-op.
    pub fn rebalance(&mut self, max_moves: usize) -> usize {
        self.stats.rebalance_ticks += 1;
        // Only placement-eligible shards participate; with every shard
        // healthy this is the identity over all shard indices.
        let eligible: Vec<usize> = (0..self.shards.len())
            .filter(|&idx| self.health[idx].accepts_placements())
            .collect();
        if eligible.len() < 2 || max_moves == 0 {
            self.metrics.record_rebalance_tick(0);
            return 0;
        }
        // The rebalancer's planning probes run outside any shard's decide
        // scope; attribute their hot-counter activity to the service.
        let hot = scoped::thread_snapshot();
        let admitted: BTreeMap<TaskId, Task> = self
            .resident
            .iter()
            .filter_map(|(id, holders)| self.shards[holders[0]].lookup_admitted(*id))
            .map(|task| (task.id(), task))
            .collect();
        let lookup = |id: TaskId| admitted.get(&id).cloned();
        let placer = self.shards[0].placer().clone();
        // Every shard runs the same configuration, so shard 0's cost model
        // speaks for the fleet: a stolen task must stay schedulable on the
        // receiver with one migration charge folded into its WCET.
        let cost_model = self.shards[0].cost_model();
        let moves = {
            let charge_model = cost_model.clone();
            let charge_of = move |t: &Task| charge_model.migration_charge(t);
            // Move indices returned by the rebalancer are positions in
            // this (eligible-only) slice; map them back through
            // `eligible` below.
            let health = &self.health;
            let mut partitions: Vec<&mut Partition> = self
                .shards
                .iter_mut()
                .enumerate()
                .filter(|(idx, _)| health[*idx].accepts_placements())
                .map(|(_, shard)| shard.partition_mut())
                .collect();
            rebalance_partitions(&mut partitions, &placer, &lookup, &charge_of, max_moves)
        };
        let mut inflation = Time::ZERO;
        for mv in &moves {
            let (from, to) = (eligible[mv.from], eligible[mv.to]);
            let task = self.shards[from]
                .forget_admitted(mv.task)
                .expect("rebalanced task must be admitted on its donor shard");
            inflation += cost_model.migration_charge(&task);
            self.shards[to].note_admitted(task);
            self.resident.insert(mv.task, vec![to]);
        }
        self.stats.decisions.inflation_charged_ns = self
            .stats
            .decisions
            .inflation_charged_ns
            .saturating_add(inflation.as_nanos());
        self.stats.rebalance_moves += moves.len() as u64;
        self.metrics.record_rebalance_tick(moves.len() as u64);
        self.metrics.fold_hot(&hot.since());
        debug_assert!(self
            .shards
            .iter()
            .all(|s| s.partition().validate() == Ok(())));
        moves.len()
    }

    /// Counts one lease-expiry departure (called by the event loop when a
    /// deadline expiration synthesizes a departure).
    pub(crate) fn record_lease_expiration(&mut self) {
        self.stats.lease_expirations += 1;
        self.metrics.record_lease_expiration();
    }

    // ------------------------------------------------------------------
    // fault injection, failover, and self-audit
    // ------------------------------------------------------------------

    /// Per-shard lifecycle state, shard-index order.
    pub fn shard_health(&self) -> &[ShardHealth] {
        &self.health
    }

    /// Fault-injection and recovery counters.
    pub fn fault_stats(&self) -> &FaultStats {
        &self.fault_stats
    }

    /// The live cross-shard cost multiplier (1 = no spike active).
    pub fn cost_spike_factor(&self) -> u32 {
        self.cost_spike_factor
    }

    /// Applies one injected fault. Crashes drain and re-admit (see
    /// [`ShardHealth`]); stalls and spikes flip state that
    /// [`end_fault`](Self::end_fault) reverts; corruption flips one
    /// memoized response time for a later [`audit_tick`](Self::audit_tick)
    /// to catch. Out-of-range shard indices are ignored (a scripted plan
    /// may target a larger fleet than this run's).
    pub fn apply_fault(&mut self, kind: &FaultKind) {
        self.fault_stats.injections += 1;
        self.metrics.record_fault_injection(kind.label());
        match *kind {
            FaultKind::ShardCrash { shard, .. } => {
                self.fault_stats.crashes += 1;
                self.crash_shard(shard);
            }
            FaultKind::ShardStall { shard, .. } => {
                self.fault_stats.stalls += 1;
                if shard < self.shards.len() && self.health[shard].accepts_placements() {
                    self.health[shard] = ShardHealth::Stalled;
                }
            }
            FaultKind::CacheCorruption { shard, core } => {
                self.fault_stats.corruptions += 1;
                if shard < self.shards.len() {
                    // Best effort to make the fault land: if the named
                    // core has no fresh memo to corrupt, walk the shard's
                    // other cores until one does.
                    let partition = self.shards[shard].partition_mut();
                    let cores = partition.core_count();
                    let _ = (0..cores)
                        .map(|offset| CoreId((core + offset) % cores.max(1)))
                        .any(|c| partition.corrupt_cached_response(c));
                }
            }
            FaultKind::CostSpike { factor, .. } => {
                self.fault_stats.cost_spikes += 1;
                self.cost_spike_factor = factor.max(1);
            }
        }
    }

    /// Ends a timed fault: a stalled shard returns to the rotation, a
    /// crashed shard rejoins (empty — the crash drained it), a cost spike
    /// collapses back to factor 1. Corruption has no timed end; audits
    /// repair it.
    pub fn end_fault(&mut self, kind: &FaultKind) {
        match *kind {
            FaultKind::ShardCrash { shard, .. } => {
                if shard < self.shards.len() && self.health[shard] == ShardHealth::Down {
                    self.rejoin_shard(shard);
                }
            }
            FaultKind::ShardStall { shard, .. } => {
                if shard < self.shards.len() && self.health[shard] == ShardHealth::Stalled {
                    self.health[shard] = ShardHealth::Healthy;
                }
            }
            FaultKind::CacheCorruption { .. } => {}
            FaultKind::CostSpike { .. } => {
                self.cost_spike_factor = 1;
            }
        }
    }

    /// One self-audit pass: re-verifies the cached RTA of the next core
    /// in a round-robin over every live shard's cores against a scratch
    /// recomputation, rebuilding the memo in place on mismatch
    /// ([`CacheAuditVerdict::Repaired`]). Returns `None` when no live
    /// core was auditable (no cache attached, or the memo was stale).
    pub fn audit_tick(&mut self) -> Option<CacheAuditVerdict> {
        let total: usize = self.shards.iter().map(S::core_count).sum();
        if total == 0 {
            return None;
        }
        for _ in 0..total {
            let mut flat = self.audit_cursor % total;
            self.audit_cursor = self.audit_cursor.wrapping_add(1);
            let mut shard = 0;
            while flat >= self.shards[shard].core_count() {
                flat -= self.shards[shard].core_count();
                shard += 1;
            }
            if self.health[shard] == ShardHealth::Down {
                continue;
            }
            self.fault_stats.audit_checks += 1;
            let verdict = self.shards[shard]
                .partition_mut()
                .audit_cached_core(CoreId(flat));
            let repaired = verdict == Some(CacheAuditVerdict::Repaired);
            if repaired {
                self.fault_stats.audit_violations += 1;
                self.fault_stats.audit_repairs += 1;
            }
            self.metrics.record_audit_check(repaired);
            return verdict;
        }
        None
    }

    /// Kills a shard: marks it `Down`, drains every task holding a piece
    /// on it (ascending task id, so recovery is deterministic), and
    /// re-admits the drained tasks onto the survivors through the normal
    /// placement order — falling back to the cross-shard planner, whose
    /// [`PlanTxn`] rewinds the survivors bit-identically when a recovery
    /// placement fails. Unrecoverable tasks surface as
    /// [`DecisionKind::EvictedOnFailure`] entries in the service log.
    fn crash_shard(&mut self, shard: usize) {
        if shard >= self.shards.len() || self.health[shard] == ShardHealth::Down {
            return;
        }
        self.health[shard] = ShardHealth::Down;
        let victims: Vec<(TaskId, Vec<usize>)> = self
            .resident
            .iter()
            .filter(|(_, holders)| holders.contains(&shard))
            .map(|(id, holders)| (*id, holders.clone()))
            .collect();
        let mut drained: Vec<Task> = Vec::new();
        for (id, holders) in victims {
            // Capture the original parameters before the bookkeeping is
            // dropped: a whole admission's original lives on its shard, a
            // split's is pinned in `split_originals`.
            let original = self
                .split_originals
                .remove(&id)
                .or_else(|| self.shards[holders[0]].lookup_admitted(id));
            // The crash wipes the dead shard's residency; surviving
            // holders of cross-shard pieces drop their now-orphaned
            // pieces. Departing the dead shard too leaves it exactly as a
            // rebuild from the (now-empty) residency map would.
            for &holder in &holders {
                let decision = self.shards[holder].decide(&WorkloadEvent::Depart(id));
                debug_assert_eq!(decision.kind, DecisionKind::Departed);
            }
            self.resident.remove(&id);
            if let Some(task) = original {
                drained.push(task);
            }
        }
        self.fault_stats.drained += drained.len() as u64;
        self.metrics.record_fault_drained(drained.len() as u64);
        for task in drained {
            if self.readmit(&task) {
                self.fault_stats.recoveries += 1;
                self.metrics.record_fault_recovery();
            } else {
                self.fault_stats.evictions += 1;
                self.metrics.record_fault_eviction();
                self.push_eviction_decision(task.id());
            }
        }
    }

    /// Re-admits one drained task onto the surviving shards. Unlike
    /// [`arrive`](Self::arrive) this is not a workload event: it appends
    /// no service decision and leaves the service-level decision counters
    /// alone (the shards' own logs still record the placements).
    fn readmit(&mut self, task: &Task) -> bool {
        debug_assert!(!self.resident.contains_key(&task.id()));
        let spare = self.spare_utilizations();
        let mut order = self.router.placement_order(task.id(), &spare);
        order.retain(|&idx| self.health[idx].accepts_placements());
        let event = WorkloadEvent::Arrive(task.clone());
        for shard_idx in order {
            if self.shards[shard_idx].decide(&event).is_admission() {
                self.resident.insert(task.id(), vec![shard_idx]);
                return true;
            }
        }
        if self.cross_shard {
            // The planner's stats attribution (cross_shard_admissions,
            // admitted/migration counters) intentionally still applies:
            // the recovery genuinely consumed that capacity.
            let stage = Instant::now();
            let planned = self.try_cross_shard(task);
            self.metrics.record_stage(
                DecisionPath::CrossShardSplit,
                planned.is_some(),
                stage.elapsed().as_nanos() as u64,
            );
            return planned.is_some();
        }
        false
    }

    /// A crashed shard whose down interval elapsed rebuilds itself from
    /// the residency map — which holds nothing for it, because the crash
    /// drained it — and re-enters the rotation as `Rejoining`.
    fn rejoin_shard(&mut self, shard: usize) {
        debug_assert!(self
            .resident
            .values()
            .all(|holders| !holders.contains(&shard)));
        self.health[shard] = ShardHealth::Rejoining;
        self.fault_stats.rejoins += 1;
        self.metrics.record_fault_rejoin();
    }

    /// Flips every `Rejoining` shard to `Healthy` (called when the router
    /// next routes an arrival, completing the rejoin).
    fn complete_rejoins(&mut self) {
        for state in &mut self.health {
            if *state == ShardHealth::Rejoining {
                *state = ShardHealth::Healthy;
            }
        }
    }

    /// Appends a service-level [`DecisionKind::EvictedOnFailure`] entry
    /// for a drained task no survivor could host.
    fn push_eviction_decision(&mut self, id: TaskId) {
        let decision = Decision {
            event_index: self.next_event,
            task: id,
            kind: DecisionKind::EvictedOnFailure,
        };
        self.next_event += 1;
        self.decisions.push(decision);
        self.metrics
            .finish_decision(u64::from(id.0), &decision.kind, 0, &Default::default());
    }
}

/// Simultaneous mutable borrows of two distinct shards.
fn two_shards_mut<S>(shards: &mut [S], a: usize, b: usize) -> (&mut S, &mut S) {
    debug_assert_ne!(a, b, "cross-shard planning needs two distinct shards");
    if a < b {
        let (left, right) = shards.split_at_mut(b);
        (&mut left[a], &mut right[0])
    } else {
        let (left, right) = shards.split_at_mut(a);
        (&mut right[0], &mut left[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spms_task::Time;

    fn task(id: u32, wcet_ms: u64, period_ms: u64) -> Task {
        Task::new(id, Time::from_millis(wcet_ms), Time::from_millis(period_ms)).unwrap()
    }

    fn service(cores: usize, shards: usize) -> ShardedAdmission {
        ShardedAdmission::new(OnlineConfig::new(cores), shards).unwrap()
    }

    #[test]
    fn shard_counts_are_validated() {
        assert!(matches!(
            ShardedAdmission::new(OnlineConfig::new(4), 0),
            Err(OnlineError::InvalidShardCount {
                shards: 0,
                cores: 4
            })
        ));
        assert!(matches!(
            ShardedAdmission::new(OnlineConfig::new(2), 3),
            Err(OnlineError::InvalidShardCount {
                shards: 3,
                cores: 2
            })
        ));
        let svc = service(5, 2);
        assert_eq!(svc.shard_count(), 2);
        let cores: Vec<usize> = svc.shards().iter().map(|s| s.config().cores).collect();
        assert_eq!(cores, vec![3, 2]);
    }

    #[test]
    fn arrivals_route_home_and_departures_follow_residency() {
        let mut svc = service(4, 2);
        let t = task(0, 1, 10);
        let home = ShardRouter::new(2).home_shard(t.id());
        let d = svc.handle_event(&WorkloadEvent::Arrive(t.clone()));
        assert!(d.is_admission());
        assert_eq!(svc.resident_shard(t.id()), Some(home));
        assert!(svc.shards()[home].is_admitted(t.id()));

        let d = svc.handle_event(&WorkloadEvent::Depart(t.id()));
        assert_eq!(d.kind, DecisionKind::Departed);
        assert_eq!(svc.resident_shard(t.id()), None);
        assert_eq!(svc.stats().decisions.departures, 1);

        let d = svc.handle_event(&WorkloadEvent::Depart(t.id()));
        assert_eq!(d.kind, DecisionKind::DepartUnknown);
        assert_eq!(svc.stats().decisions.unknown_departures, 1);
    }

    #[test]
    fn duplicate_arrivals_are_rejected_at_the_service() {
        let mut svc = service(2, 2);
        let t = task(3, 1, 10);
        assert!(svc
            .handle_event(&WorkloadEvent::Arrive(t.clone()))
            .is_admission());
        let d = svc.handle_event(&WorkloadEvent::Arrive(t));
        assert_eq!(
            d.kind,
            DecisionKind::Rejected {
                reason: RejectionReason::DuplicateTask
            }
        );
        // The duplicate never reached a shard: each shard saw at most one
        // arrival.
        assert!(svc.shards().iter().all(|s| s.stats().arrivals <= 1));
    }

    #[test]
    fn overflow_places_on_another_shard_when_home_is_full() {
        // 2 cores, 2 shards of 1 core each. Fill both shards' homes with
        // utilization 0.9, then offer a 0.5 task: its home shard must
        // reject and the overflow path cannot help either (both full) —
        // then drain one shard and the overflow admission must land there.
        let mut svc = service(2, 2);
        let router = ShardRouter::new(2);
        // Two heavy tasks with ids homed on different shards.
        let mut heavy_ids = vec![];
        for id in 0.. {
            let home = router.home_shard(TaskId(id));
            if !heavy_ids.iter().any(|(_, h)| *h == home) {
                heavy_ids.push((id, home));
            }
            if heavy_ids.len() == 2 {
                break;
            }
        }
        for (id, _) in &heavy_ids {
            let t = task(*id, 9, 10); // u = 0.9
            assert!(svc.handle_event(&WorkloadEvent::Arrive(t)).is_admission());
        }
        // A 0.5 task cannot fit anywhere now.
        let mut probe_id = 1000;
        let t = task(probe_id, 5, 10);
        let d = svc.handle_event(&WorkloadEvent::Arrive(t));
        assert!(!d.is_admission());
        // Drain the task on the shard that is NOT the probe's home.
        let probe_home = router.home_shard(TaskId(probe_id));
        let (victim_id, _) = heavy_ids.iter().find(|(_, h)| *h != probe_home).unwrap();
        svc.handle_event(&WorkloadEvent::Depart(TaskId(*victim_id)));
        // Re-offer (fresh id with the same home as the full shard).
        loop {
            probe_id += 1;
            if router.home_shard(TaskId(probe_id)) == probe_home {
                break;
            }
        }
        let t = task(probe_id, 5, 10);
        let d = svc.handle_event(&WorkloadEvent::Arrive(t.clone()));
        assert!(d.is_admission(), "overflow shard had room: {:?}", d.kind);
        assert_ne!(svc.resident_shard(t.id()), Some(probe_home));
        assert_eq!(svc.stats().overflow_admissions, 1);
    }

    #[test]
    fn rebalance_moves_load_and_keeps_bookkeeping_consistent() {
        let mut svc = service(2, 2);
        let router = ShardRouter::new(2);
        // Pile several small tasks onto one home shard.
        let mut ids = vec![];
        let mut id = 0u32;
        while ids.len() < 4 {
            if router.home_shard(TaskId(id)) == 0 {
                ids.push(id);
            }
            id += 1;
        }
        for id in &ids {
            let t = task(*id, 2, 10); // u = 0.2 each
            assert!(svc.handle_event(&WorkloadEvent::Arrive(t)).is_admission());
        }
        assert!(svc.spare_utilizations()[0] < svc.spare_utilizations()[1]);
        let moved = svc.rebalance(8);
        assert!(moved > 0, "imbalanced shards must trigger moves");
        assert_eq!(svc.stats().rebalance_moves, moved as u64);
        // Every task is still resident exactly where the map says.
        for id in &ids {
            let shard = svc.resident_shard(TaskId(*id)).unwrap();
            assert!(svc.shards()[shard].is_admitted(TaskId(*id)));
            assert_eq!(
                svc.shards()[shard]
                    .partition()
                    .placements_of(TaskId(*id))
                    .len(),
                1
            );
        }
        // Departing a migrated task still works.
        for id in &ids {
            assert_eq!(
                svc.handle_event(&WorkloadEvent::Depart(TaskId(*id))).kind,
                DecisionKind::Departed
            );
        }
        assert_eq!(svc.admitted_count(), 0);
    }

    #[test]
    fn single_shard_service_matches_the_legacy_controller() {
        let events = crate::ChurnGenerator::new()
            .cores(4)
            .events(200)
            .seed(21)
            .generate()
            .unwrap();
        let config = OnlineConfig::new(4);
        let mut svc = ShardedAdmission::new(config.clone(), 1).unwrap();
        let mut legacy = AdmissionController::new(config).unwrap();
        let service_decisions = svc.handle_all(&events);
        let legacy_decisions = legacy.handle_all(&events);
        assert_eq!(service_decisions, legacy_decisions);
        assert_eq!(svc.stats().decisions, *legacy.stats());
        assert_eq!(svc.stats().overflow_admissions, 0);
        // The deterministic metric section agrees byte for byte: outcomes
        // from identical decision streams, mechanism counters from the
        // identical cascade the single shard ran (every engine registers
        // the full metric name set, so the service's untouched overflow
        // and rebalance counters sit at zero on both sides).
        let deterministic = |r: &Registry| {
            r.snapshot(spms_telemetry::SnapshotFilter::Deterministic)
                .render_prometheus()
        };
        assert_eq!(
            deterministic(&svc.merged_metrics_registry()),
            deterministic(legacy.metrics().registry())
        );
    }

    #[test]
    fn service_metrics_track_overflow_and_rebalance() {
        let mut svc = service(2, 2);
        let router = ShardRouter::new(2);
        let mut ids = vec![];
        let mut id = 0u32;
        while ids.len() < 4 {
            if router.home_shard(TaskId(id)) == 0 {
                ids.push(id);
            }
            id += 1;
        }
        for id in &ids {
            assert!(svc
                .handle_event(&WorkloadEvent::Arrive(task(*id, 2, 10)))
                .is_admission());
        }
        let moved = svc.rebalance(8);
        assert!(moved > 0);
        let merged = svc.merged_metrics_registry();
        assert_eq!(
            merged.counter_by_name("spms_mech_rebalance_ticks_total"),
            Some(1)
        );
        assert_eq!(
            merged.counter_by_name("spms_mech_rebalance_moves_total"),
            Some(moved as u64)
        );
        assert_eq!(
            merged.gauge_by_name("spms_mech_rebalance_last_moves"),
            Some(moved as u64)
        );
        let history: Vec<_> = svc.metrics().rebalance_history().copied().collect();
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].moves, moved as u64);
        // Outcome counters follow the service's final decisions, not the
        // per-shard decide attempts.
        assert_eq!(
            merged.counter_by_name("spms_arrivals_total"),
            Some(ids.len() as u64)
        );
        assert_eq!(
            merged.counter_by_name("spms_admitted_total"),
            Some(ids.len() as u64)
        );
        // Shard mechanism activity (first-fit probes) made it into the
        // merged view.
        assert!(
            merged
                .counter_by_name("spms_mech_whole_probes_total")
                .unwrap()
                >= 1
        );
    }

    /// The smallest id whose home shard (out of 2) is `home`.
    fn id_homed_on(home: usize) -> u32 {
        let router = ShardRouter::new(2);
        (0u32..)
            .find(|id| router.home_shard(TaskId(*id)) == home)
            .unwrap()
    }

    /// Two 1-core shards loaded so a walled service must reject an
    /// 11 ms / 20 ms arrival everywhere, while the cross-shard planner
    /// can place a 5 ms body on shard 0 and the 6 ms tail on shard 1
    /// (tail deadline 15 ms; shard 1's resident still meets R = 14 ≤ 16).
    fn loaded_pair(cross_shard: bool) -> (ShardedAdmission, Task) {
        let mut config = OnlineConfig::new(2);
        config.cross_shard_split = cross_shard;
        let mut svc = ShardedAdmission::new(config, 2).unwrap();
        let donor_resident = task(id_homed_on(0), 5, 10);
        let receiver_resident = task(id_homed_on(1), 8, 16);
        assert!(svc
            .handle_event(&WorkloadEvent::Arrive(donor_resident))
            .is_admission());
        assert!(svc
            .handle_event(&WorkloadEvent::Arrive(receiver_resident))
            .is_admission());
        let arrival = task(1000, 11, 20);
        (svc, arrival)
    }

    #[test]
    fn cross_shard_split_recovers_a_walled_rejection() {
        // Walled: the arrival fits no single 1-core shard, whole or split.
        let (mut walled, arrival) = loaded_pair(false);
        let d = walled.handle_event(&WorkloadEvent::Arrive(arrival.clone()));
        assert!(
            !d.is_admission(),
            "walled service must reject: {:?}",
            d.kind
        );

        // Cross-shard: body on the donor, tail on the receiver.
        let (mut svc, arrival) = loaded_pair(true);
        assert!(svc.cross_shard_enabled());
        let d = svc.handle_event(&WorkloadEvent::Arrive(arrival.clone()));
        assert_eq!(
            d.kind,
            DecisionKind::Admitted {
                path: DecisionPath::CrossShardSplit,
                migrations: 1,
                inflation: Time::ZERO,
            }
        );
        assert_eq!(svc.resident_shards(arrival.id()), &[0, 1]);
        assert_eq!(svc.stats().cross_shard_admissions, 1);
        for shard in svc.shards() {
            assert_eq!(shard.partition().validate(), Ok(()));
            assert!(shard.is_admitted(arrival.id()));
        }
        let merged = svc.merged_metrics_registry();
        assert_eq!(
            merged.counter_by_name("spms_mech_cross_shard_attempts_total"),
            Some(1)
        );
        assert_eq!(
            merged.counter_by_name("spms_mech_cross_shard_admissions_total"),
            Some(1)
        );
        assert_eq!(
            merged.counter_by_name("spms_mech_cross_shard_pieces_total"),
            Some(2)
        );
        assert_eq!(
            merged.counter_by_name("spms_admitted_cross_shard_split_total"),
            Some(1)
        );

        // Stitching the shard partitions relinks the chain into a fully
        // valid global placement.
        let partitions: Vec<_> = svc.shards().iter().map(|s| s.partition()).collect();
        let stitched = spms_core::stitch_partitions(&partitions);
        assert_eq!(stitched.validate(), Ok(()));
        assert_eq!(stitched.placements_of(arrival.id()).len(), 2);
    }

    #[test]
    fn failed_cross_shard_plans_leave_both_shards_untouched() {
        // Receiver loaded to 14/16: the 6 ms tail (deadline 15) would
        // push its resident to R = 20 > 16, so phase-1 planning fails
        // and nothing may change on either shard.
        let mut config = OnlineConfig::new(2);
        config.cross_shard_split = true;
        let mut svc = ShardedAdmission::new(config, 2).unwrap();
        let donor_resident = task(id_homed_on(0), 5, 10);
        let receiver_resident = task(id_homed_on(1), 14, 16);
        assert!(svc
            .handle_event(&WorkloadEvent::Arrive(donor_resident))
            .is_admission());
        assert!(svc
            .handle_event(&WorkloadEvent::Arrive(receiver_resident))
            .is_admission());
        let before: Vec<_> = svc.shards().iter().map(|s| s.partition().clone()).collect();
        let d = svc.handle_event(&WorkloadEvent::Arrive(task(1000, 11, 20)));
        assert!(!d.is_admission());
        let after: Vec<_> = svc.shards().iter().map(|s| s.partition().clone()).collect();
        assert_eq!(before, after, "a failed plan must not leak state");
        let merged = svc.merged_metrics_registry();
        assert_eq!(
            merged.counter_by_name("spms_mech_cross_shard_attempts_total"),
            Some(1)
        );
        assert_eq!(
            merged.counter_by_name("spms_mech_cross_shard_admissions_total"),
            Some(0)
        );
        assert_eq!(svc.resident_shard(TaskId(1000)), None);
    }

    #[test]
    fn departures_fan_out_to_every_shard_holding_a_piece() {
        let (mut svc, arrival) = loaded_pair(true);
        assert!(svc
            .handle_event(&WorkloadEvent::Arrive(arrival.clone()))
            .is_admission());
        assert_eq!(svc.resident_shards(arrival.id()).len(), 2);

        // A duplicate arrival while the task is split across shards is
        // screened at the service before any shard sees it.
        let d = svc.handle_event(&WorkloadEvent::Arrive(arrival.clone()));
        assert_eq!(
            d.kind,
            DecisionKind::Rejected {
                reason: RejectionReason::DuplicateTask
            }
        );

        // One departure clears every piece on every shard.
        let d = svc.handle_event(&WorkloadEvent::Depart(arrival.id()));
        assert_eq!(d.kind, DecisionKind::Departed);
        assert_eq!(svc.resident_shards(arrival.id()), &[] as &[usize]);
        for shard in svc.shards() {
            assert!(!shard.is_admitted(arrival.id()));
            assert!(shard.partition().placements_of(arrival.id()).is_empty());
            assert_eq!(shard.partition().validate(), Ok(()));
        }
        assert_eq!(svc.stats().decisions.departures, 1);

        // The second departure is unknown — exactly once, not once per
        // shard that used to hold a piece.
        let d = svc.handle_event(&WorkloadEvent::Depart(arrival.id()));
        assert_eq!(d.kind, DecisionKind::DepartUnknown);
        assert_eq!(svc.stats().decisions.unknown_departures, 1);
    }

    #[test]
    fn depart_after_rebalance_follows_the_moved_residency() {
        // The depart-after-rebalance race: a task admitted on its home
        // shard, then work-stolen to the other, must depart exactly once
        // from wherever it now lives — and only there.
        let mut config = OnlineConfig::new(2);
        config.cross_shard_split = true;
        let mut svc = ShardedAdmission::new(config, 2).unwrap();
        let router = ShardRouter::new(2);
        let mut ids = vec![];
        let mut id = 0u32;
        while ids.len() < 4 {
            if router.home_shard(TaskId(id)) == 0 {
                ids.push(id);
            }
            id += 1;
        }
        for id in &ids {
            assert!(svc
                .handle_event(&WorkloadEvent::Arrive(task(*id, 2, 10)))
                .is_admission());
        }
        let moved = svc.rebalance(8);
        assert!(moved > 0);
        let migrant = *ids
            .iter()
            .find(|id| svc.resident_shard(TaskId(**id)) == Some(1))
            .expect("rebalance moved something to shard 1");
        // Residency is single-shard again after the move.
        assert_eq!(svc.resident_shards(TaskId(migrant)), &[1]);
        // A duplicate arrival of the migrant is still screened.
        let d = svc.handle_event(&WorkloadEvent::Arrive(task(migrant, 2, 10)));
        assert_eq!(
            d.kind,
            DecisionKind::Rejected {
                reason: RejectionReason::DuplicateTask
            }
        );
        assert_eq!(
            svc.handle_event(&WorkloadEvent::Depart(TaskId(migrant)))
                .kind,
            DecisionKind::Departed
        );
        assert!(!svc.shards()[0].is_admitted(TaskId(migrant)));
        assert!(!svc.shards()[1].is_admitted(TaskId(migrant)));
        assert_eq!(
            svc.handle_event(&WorkloadEvent::Depart(TaskId(migrant)))
                .kind,
            DecisionKind::DepartUnknown
        );
    }

    #[test]
    fn crash_drains_the_shard_and_readmits_onto_survivors() {
        let mut svc = service(8, 2);
        let router = ShardRouter::new(2);
        // Admit tasks homed on both shards so the crash has real victims.
        let mut on_dead = 0;
        for id in 0..8u32 {
            assert!(svc
                .handle_event(&WorkloadEvent::Arrive(task(id, 1, 10)))
                .is_admission());
            if router.home_shard(TaskId(id)) == 0 {
                on_dead += 1;
            }
        }
        assert!(on_dead > 0, "some task must be homed on shard 0");
        let before = svc.admitted_count();
        svc.apply_fault(&FaultKind::ShardCrash {
            shard: 0,
            down_ms: 50,
        });
        assert_eq!(svc.shard_health()[0], ShardHealth::Down);
        let stats = *svc.fault_stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.drained, on_dead as u64);
        assert_eq!(stats.recoveries + stats.evictions, stats.drained);
        // Light load on 4 surviving cores: everything recovers, nothing
        // is evicted, and no residency points at the dead shard.
        assert_eq!(stats.evictions, 0);
        assert_eq!(svc.admitted_count(), before);
        assert_eq!(svc.shards()[0].partition().placement_count(), 0);
        for id in 0..8u32 {
            assert_eq!(svc.resident_shards(TaskId(id)), &[1]);
        }
        // The rejoin brings the shard back empty and the next arrival
        // completes it.
        svc.end_fault(&FaultKind::ShardCrash {
            shard: 0,
            down_ms: 50,
        });
        assert_eq!(svc.shard_health()[0], ShardHealth::Rejoining);
        assert_eq!(svc.fault_stats().rejoins, 1);
        assert!(svc
            .handle_event(&WorkloadEvent::Arrive(task(100, 1, 10)))
            .is_admission());
        assert_eq!(svc.shard_health()[0], ShardHealth::Healthy);
    }

    #[test]
    fn unrecoverable_drained_tasks_surface_as_evictions() {
        // Saturate both shards, then crash one: the survivors have no
        // room, so the drained tasks surface as EvictedOnFailure entries
        // in the service log (not silent drops).
        let mut svc = service(2, 2);
        let mut admitted = vec![];
        for id in 0..40u32 {
            if svc
                .handle_event(&WorkloadEvent::Arrive(task(id, 9, 10)))
                .is_admission()
            {
                admitted.push(id);
            }
        }
        assert!(admitted.len() >= 2, "near-saturation load must admit");
        let crashed = svc.resident_shard(TaskId(admitted[0])).unwrap();
        let log_before = svc.decisions().len();
        svc.apply_fault(&FaultKind::ShardCrash {
            shard: crashed,
            down_ms: 50,
        });
        let stats = *svc.fault_stats();
        assert!(stats.drained > 0);
        assert!(stats.evictions > 0, "a full survivor cannot host the drain");
        let evicted: Vec<&Decision> = svc.decisions()[log_before..]
            .iter()
            .filter(|d| d.kind == DecisionKind::EvictedOnFailure)
            .collect();
        assert_eq!(evicted.len() as u64, stats.evictions);
        // Eviction entries keep the event index monotone.
        for (i, d) in svc.decisions().iter().enumerate() {
            assert_eq!(d.event_index, i);
        }
    }

    #[test]
    fn stalled_shards_leave_the_rotation_and_return() {
        let mut svc = service(4, 2);
        let stall = FaultKind::ShardStall { shard: 0, ms: 10 };
        svc.apply_fault(&stall);
        assert_eq!(svc.shard_health()[0], ShardHealth::Stalled);
        // Every arrival lands on shard 1 while the stall holds, even
        // tasks homed on shard 0.
        for id in 0..6u32 {
            assert!(svc
                .handle_event(&WorkloadEvent::Arrive(task(id, 1, 100)))
                .is_admission());
            assert_eq!(svc.resident_shards(TaskId(id)), &[1]);
        }
        // Stalled shards keep their residents: no drain happened.
        assert_eq!(svc.fault_stats().drained, 0);
        svc.end_fault(&stall);
        assert_eq!(svc.shard_health()[0], ShardHealth::Healthy);
        let t = task(50, 1, 100);
        let home = ShardRouter::new(2).home_shard(t.id());
        if home == 0 {
            assert!(svc.handle_event(&WorkloadEvent::Arrive(t)).is_admission());
            assert_eq!(svc.resident_shards(TaskId(50)), &[0]);
        }
    }

    #[test]
    fn cost_spikes_multiply_the_cross_shard_charge_until_they_end() {
        let spike = FaultKind::CostSpike { factor: 5, ms: 10 };
        let mut svc = service(4, 2);
        svc.apply_fault(&spike);
        assert_eq!(svc.cost_spike_factor(), 5);
        svc.end_fault(&spike);
        assert_eq!(svc.cost_spike_factor(), 1);
        assert_eq!(svc.fault_stats().cost_spikes, 1);
    }

    #[test]
    fn audit_ticks_catch_injected_cache_corruption() {
        let mut svc = service(4, 2);
        for id in 0..8u32 {
            svc.handle_event(&WorkloadEvent::Arrive(task(id, 1, 10)));
        }
        // A clean sweep over every core first: all verdicts clean.
        let cores: usize = svc.shards().iter().map(|s| s.core_count()).sum();
        for _ in 0..cores {
            assert_ne!(svc.audit_tick(), Some(CacheAuditVerdict::Repaired));
        }
        assert_eq!(svc.fault_stats().audit_violations, 0);
        svc.apply_fault(&FaultKind::CacheCorruption { shard: 0, core: 0 });
        assert_eq!(svc.fault_stats().corruptions, 1);
        // One full audit round must detect and repair exactly the one
        // corrupted memo...
        let mut repaired = 0;
        for _ in 0..cores {
            if svc.audit_tick() == Some(CacheAuditVerdict::Repaired) {
                repaired += 1;
            }
        }
        assert_eq!(repaired, 1);
        assert_eq!(svc.fault_stats().audit_violations, 1);
        assert_eq!(svc.fault_stats().audit_repairs, 1);
        // ...and the next round is clean again.
        for _ in 0..cores {
            assert_ne!(svc.audit_tick(), Some(CacheAuditVerdict::Repaired));
        }
        assert_eq!(svc.fault_stats().audit_violations, 1);
    }

    #[test]
    fn a_crash_recovers_cross_shard_splits_from_their_original_parameters() {
        // A task split across shards 0 and 1 is stored piece-shaped on
        // both; crashing the tail holder must re-admit the ORIGINAL
        // parameters, not a piece.
        let mut config = OnlineConfig::new(4);
        config.cross_shard_split = true;
        let mut svc = ShardedAdmission::new(config, 2).unwrap();
        // Fill both shards until only a cross-shard split fits.
        let mut split_id = None;
        for id in 0..40u32 {
            let d = svc.handle_event(&WorkloadEvent::Arrive(task(id, 11, 20)));
            if let DecisionKind::Admitted {
                path: DecisionPath::CrossShardSplit,
                ..
            } = d.kind
            {
                split_id = Some(id);
                break;
            }
        }
        let Some(split_id) = split_id else {
            // The packing never produced a split on this geometry; the
            // scenario is vacuous rather than failed.
            return;
        };
        assert_eq!(svc.resident_shards(TaskId(split_id)).len(), 2);
        let tail_holder = svc.resident_shards(TaskId(split_id))[1];
        svc.apply_fault(&FaultKind::ShardCrash {
            shard: tail_holder,
            down_ms: 50,
        });
        let holders = svc.resident_shards(TaskId(split_id));
        if !holders.is_empty() {
            // Recovered: wherever it lives now, the admitted copy must
            // carry the original WCET (11 ms), not a piece budget.
            let kept = svc.shards()[holders[0]]
                .lookup_admitted(TaskId(split_id))
                .expect("recovered task is admitted on its holder");
            assert_eq!(kept.wcet(), Time::from_millis(11));
        } else {
            assert!(svc.fault_stats().evictions > 0);
        }
    }
}
