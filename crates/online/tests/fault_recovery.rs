//! Property-based contracts of shard failover and recovery.
//!
//! Pinned over random churn configurations, crash times, victims and
//! downtimes:
//!
//! * **conservation** — every task drained off a crashed shard is either
//!   re-admitted onto a survivor or surfaced as a typed
//!   [`DecisionKind::EvictedOnFailure`] entry; nothing silently vanishes;
//! * **stitched schedulability + cache coherence** — after crash,
//!   recovery and rejoin, the union of every shard's placement replays
//!   through the discrete-event simulator without a deadline miss, and a
//!   full self-audit sweep finds every memoized response time consistent
//!   with a scratch recomputation;
//! * **replay determinism** — the same trace, seed and fault plan
//!   reproduce the decision log, fault counters and shard health byte
//!   for byte.
//!
//! The vendored proptest runner is deterministically seeded, so these
//! cases reproduce identically on every run.

use proptest::prelude::*;
use spms_core::{stitch_partitions, CacheAuditVerdict, Partition};
use spms_faults::{FaultEvent, FaultKind, FaultPlan};
use spms_online::{
    replay::{replay_epoch, ReplayConfig},
    ChurnGenerator, DecisionKind, EventLoop, EventLoopConfig, OnlineConfig, ShardHealth,
    ShardedAdmission, TimedEvent,
};
use spms_task::Time;

const CORES: usize = 8;

/// (target utilization, workload seed, event count) — the churn half of
/// a crash scenario.
type ChurnKnobs = (f64, u64, usize);
/// (shard count, victim index, crash point %, downtime %) — the victim
/// index is reduced modulo the shard count; the percentages are of the
/// measured trace horizon.
type CrashKnobs = (usize, usize, u64, u64);

/// Strategy: a churn configuration plus a crash scenario.
fn crash_config() -> impl Strategy<Value = (ChurnKnobs, CrashKnobs)> {
    (
        (0.45f64..0.85, any::<u64>(), 30usize..70),
        (2usize..=4, 0usize..4, 10u64..90, 5u64..40),
    )
}

fn trace(target: f64, seed: u64, events: usize) -> Vec<TimedEvent> {
    ChurnGenerator::new()
        .cores(CORES)
        .target_normalized_utilization(target)
        .events(events)
        .seed(seed)
        .generate_timed()
        .expect("valid churn configuration")
}

/// One ShardCrash at `at_pct`% of the trace horizon, down for
/// `down_pct`% of it.
fn crash_plan(trace: &[TimedEvent], shard: usize, at_pct: u64, down_pct: u64) -> FaultPlan {
    let horizon_ms = trace
        .last()
        .map(|timed| timed.at.as_nanos() / 1_000_000)
        .unwrap_or(0)
        .max(100);
    let mut plan = FaultPlan::new();
    plan.push(FaultEvent {
        at_ms: horizon_ms * at_pct / 100,
        kind: FaultKind::ShardCrash {
            shard,
            down_ms: (horizon_ms * down_pct / 100).max(1),
        },
    });
    plan
}

/// Runs one timed trace plus fault plan through a fresh N-shard engine.
fn run_crashed(
    trace: &[TimedEvent],
    seed: u64,
    shards: usize,
    plan: &FaultPlan,
) -> (ShardedAdmission, EventLoop) {
    let mut engine = ShardedAdmission::new(OnlineConfig::new(CORES), shards)
        .expect("shard count is between 1 and the core count");
    let mut event_loop = EventLoop::new(
        EventLoopConfig::new(seed)
            .with_rebalance_period(Some(Time::from_millis(250)))
            .with_rebalance_max_moves(4)
            .with_audit_period(Some(Time::from_millis(100))),
    );
    event_loop.load_trace(trace);
    event_loop.load_faults(plan);
    event_loop.run(&mut engine);
    (engine, event_loop)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("logs serialize")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// (a) Conservation: drained = recovered + evicted, every eviction is
    /// a typed decision-log entry, and no shard is left in a transient
    /// state a stall would explain (none was injected).
    #[test]
    fn a_mid_soak_crash_recovers_every_drained_task_or_evicts_it(
        ((target, seed, events), (shards, victim, at_pct, down_pct)) in crash_config()
    ) {
        let trace = trace(target, seed, events);
        let plan = crash_plan(&trace, victim % shards, at_pct, down_pct);
        let (engine, _) = run_crashed(&trace, seed, shards, &plan);
        let fault = *engine.fault_stats();
        prop_assert_eq!(fault.injections, 1);
        prop_assert_eq!(fault.crashes, 1);
        prop_assert_eq!(
            fault.drained,
            fault.recoveries + fault.evictions,
            "a drained task neither recovered nor surfaced as an eviction"
        );
        prop_assert!(fault.rejoins <= 1);
        let evicted = engine
            .decisions()
            .iter()
            .filter(|d| matches!(d.kind, DecisionKind::EvictedOnFailure))
            .count() as u64;
        prop_assert_eq!(evicted, fault.evictions);
        for health in engine.shard_health() {
            prop_assert_ne!(*health, ShardHealth::Stalled, "no stall was injected");
        }
    }

    /// (b) Recovery never plants an unschedulable task and never leaves a
    /// stale memo: the stitched global placement replays miss-free, and a
    /// full audit sweep across every live core comes back clean.
    #[test]
    fn recovery_leaves_a_schedulable_partition_and_coherent_caches(
        ((target, seed, events), (shards, victim, at_pct, down_pct)) in crash_config()
    ) {
        let trace = trace(target, seed, events);
        let plan = crash_plan(&trace, victim % shards, at_pct, down_pct);
        let (mut engine, _) = run_crashed(&trace, seed, shards, &plan);
        let violations_in_run = engine.fault_stats().audit_violations;
        prop_assert_eq!(violations_in_run, 0, "an in-run audit caught a stale memo");
        for _ in 0..CORES {
            if let Some(verdict) = engine.audit_tick() {
                prop_assert_eq!(verdict, CacheAuditVerdict::Clean);
            }
        }
        let parts: Vec<&Partition> = engine.shards().iter().map(|s| s.partition()).collect();
        let stitched = stitch_partitions(&parts);
        let outcome = replay_epoch(&stitched, &ReplayConfig::new(Time::from_millis(50)));
        prop_assert_eq!(
            outcome.deadline_misses, 0,
            "recovery re-admission planted an unschedulable task"
        );
    }

    /// (c) Same trace + seed + plan ⇒ byte-identical run: decision log,
    /// processed event log, fault counters and final shard health.
    #[test]
    fn crashed_runs_replay_byte_identically(
        ((target, seed, events), (shards, victim, at_pct, down_pct)) in crash_config()
    ) {
        let trace = trace(target, seed, events);
        let plan = crash_plan(&trace, victim % shards, at_pct, down_pct);
        let (engine_a, loop_a) = run_crashed(&trace, seed, shards, &plan);
        let (engine_b, loop_b) = run_crashed(&trace, seed, shards, &plan);
        prop_assert_eq!(json(&loop_a.event_log().to_vec()), json(&loop_b.event_log().to_vec()));
        prop_assert_eq!(
            json(&engine_a.decisions().to_vec()),
            json(&engine_b.decisions().to_vec())
        );
        prop_assert_eq!(engine_a.fault_stats(), engine_b.fault_stats());
        prop_assert_eq!(engine_a.shard_health(), engine_b.shard_health());
        prop_assert_eq!(engine_a.stats(), engine_b.stats());
    }
}
