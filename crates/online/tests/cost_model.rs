//! Property-based contracts of the migration cost model.
//!
//! * **ZeroCost is byte-free** — under the free model, the serialized
//!   decision log is byte-identical to the pre-cost-model (PR 6) format:
//!   reconstructing each log line with the old two-field `Admitted` schema
//!   reproduces the exact bytes, and no `inflation` entry ever appears.
//! * **Rejections restore inflated WCETs exactly** — under a charged model,
//!   the repair pass speculatively commits *inflated* analysis WCETs; a
//!   rejection must rewind the journal to a bit-identical partition, and
//!   journal-based rollback must decide exactly like the clone-snapshot
//!   rollback it replaces.
//!
//! The vendored proptest runner is deterministically seeded, so these
//! cases reproduce identically on every run.

use proptest::prelude::*;
use spms_online::{AdmissionController, ChurnGenerator, DecisionKind, OnlineConfig, WorkloadEvent};
use spms_overhead::{CostModelSpec, CrpdCostModel};

/// Strategy: a churn-trace configuration over a 4-core platform, skewed
/// high enough to exercise split, repair and rejection paths.
fn churn_config() -> impl Strategy<Value = (f64, u64, usize)> {
    (0.55f64..0.95, any::<u64>(), 24usize..60)
}

fn trace(target: f64, seed: u64, events: usize) -> Vec<WorkloadEvent> {
    ChurnGenerator::new()
        .cores(4)
        .target_normalized_utilization(target)
        .events(events)
        .seed(seed)
        .generate()
        .expect("valid churn configuration")
}

/// Serializes one decision the way PR 6 did: `Admitted` carries only
/// `path` and `migrations`. Any inflation leaking into a ZeroCost log
/// breaks the byte-for-byte comparison against this reconstruction.
fn legacy_line(d: &spms_online::Decision) -> String {
    let kind = match d.kind {
        DecisionKind::Admitted {
            path, migrations, ..
        } => format!(r#"{{"Admitted":{{"path":"{path:?}","migrations":{migrations}}}}}"#),
        DecisionKind::Rejected { reason } => {
            format!(r#"{{"Rejected":{{"reason":"{reason:?}"}}}}"#)
        }
        DecisionKind::Departed => String::from(r#""Departed""#),
        DecisionKind::DepartUnknown => String::from(r#""DepartUnknown""#),
        DecisionKind::RenewNoted => String::from(r#""RenewNoted""#),
        DecisionKind::EvictedOnFailure => panic!("fault-free run evicted a task"),
    };
    format!(
        r#"{{"event_index":{},"task":{},"kind":{kind}}}"#,
        d.event_index, d.task.0
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// ZeroCost decision logs serialize byte-identically to the
    /// pre-cost-model format on random churn traces.
    #[test]
    fn zero_cost_logs_are_byte_identical_to_the_legacy_format(
        (target, seed, events) in churn_config()
    ) {
        let events = trace(target, seed, events);
        let config = OnlineConfig::builder()
            .cores(4)
            .cost_model(CostModelSpec::Zero)
            .build();
        prop_assert!(config.cost_model.is_zero());
        let mut controller = AdmissionController::new(config).unwrap();
        controller.handle_all(&events);
        for decision in controller.decisions() {
            let json = serde_json::to_string(decision).unwrap();
            prop_assert!(
                !json.contains("inflation"),
                "ZeroCost log leaked an inflation entry: {json}"
            );
            prop_assert_eq!(json, legacy_line(decision));
        }
        // And every admission really was charge-free.
        prop_assert_eq!(controller.stats().inflation_charged_ns, 0);
    }

    /// Under a charged model, every rejection rewinds the speculative
    /// inflated placements to a bit-identical partition, and the journal
    /// rewind agrees decision-for-decision with clone-snapshot rollback.
    #[test]
    fn rejections_restore_inflated_wcets_exactly(
        (target, seed, events) in churn_config()
    ) {
        let events = trace(target, seed, events);
        let charged = |journal: bool| {
            OnlineConfig::builder()
                .cores(4)
                .cost_model(CostModelSpec::Crpd(CrpdCostModel::mixed()))
                .journal(journal)
                .build()
        };
        let mut journaled = AdmissionController::new(charged(true)).unwrap();
        let mut cloned = AdmissionController::new(charged(false)).unwrap();
        let mut rejections = 0usize;
        for event in &events {
            let before = journaled.partition().clone();
            let a = journaled.handle_event(event);
            let b = cloned.handle_event(event);
            prop_assert_eq!(a, b, "journal and clone rollback diverged");
            if matches!(a.kind, DecisionKind::Rejected { .. }) {
                rejections += 1;
                prop_assert_eq!(
                    journaled.partition(),
                    &before,
                    "a rejected arrival left inflated WCETs behind"
                );
            }
        }
        prop_assert_eq!(journaled.partition(), cloned.partition());
        prop_assert_eq!(journaled.stats(), cloned.stats());
        // High-load traces must actually exercise the rollback machinery
        // for the property to mean anything; the generator's loads make
        // zero rejections implausible but not impossible, so only assert
        // the partitions stayed sound.
        let _ = rejections;
        prop_assert_eq!(journaled.partition().validate(), Ok(()));
    }
}
