//! Property-based invariants of the online admission controller.
//!
//! The two contracts the ISSUE pins:
//!
//! * **no over-admission** — after every admission along a random churn
//!   trace, the admitted set also passes the from-scratch offline
//!   `SemiPartitionedFpTs` analysis (the controller never sneaks in a set
//!   the offline algorithm would call unschedulable);
//! * **depart-then-rearrive convergence** — removing an admitted task and
//!   re-offering it always converges back to a schedulable partition: the
//!   re-arrival is admitted and the partition passes the acceptance test.
//!
//! The vendored proptest runner is deterministically seeded, so these
//! cases reproduce identically on every run.

use proptest::prelude::*;
use spms_core::Partitioner;
use spms_online::{AdmissionController, ChurnGenerator, DecisionKind, OnlineConfig, WorkloadEvent};
use spms_task::TaskId;

/// Strategy: a churn-trace configuration over a 4-core platform with a
/// moderate-to-high target load.
fn churn_config() -> impl Strategy<Value = (f64, u64, usize)> {
    (0.45f64..0.85, any::<u64>(), 24usize..60)
}

fn trace(target: f64, seed: u64, events: usize) -> Vec<WorkloadEvent> {
    ChurnGenerator::new()
        .cores(4)
        .target_normalized_utilization(target)
        .events(events)
        .seed(seed)
        .generate()
        .expect("valid churn configuration")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// (a) No over-admission: every admitted set also passes the offline
    /// FP-TS analysis from scratch, and the live partition is structurally
    /// valid and schedulable after every event.
    #[test]
    fn no_over_admission((target, seed, events) in churn_config()) {
        let events = trace(target, seed, events);
        let mut controller = AdmissionController::new(OnlineConfig::new(4)).unwrap();
        let offline = controller.offline_partitioner();
        for event in events {
            let decision = controller.handle(event);
            prop_assert_eq!(controller.partition().validate(), Ok(()));
            prop_assert!(
                controller.partition().is_schedulable(controller.config().test),
                "live partition failed the acceptance test after event {}",
                decision.event_index
            );
            if decision.is_admission() {
                let admitted = controller.admitted_tasks();
                let outcome = offline.partition(&admitted, 4).unwrap();
                prop_assert!(
                    outcome.is_schedulable(),
                    "controller admitted {} tasks (U = {:.3}) that offline FP-TS rejects",
                    admitted.len(),
                    admitted.total_utilization()
                );
            }
        }
    }

    /// (b) Depart-then-rearrive converges: for every admitted task, leaving
    /// and immediately re-arriving ends in a schedulable partition that
    /// still contains the task.
    #[test]
    fn depart_then_rearrive_converges((target, seed, events) in churn_config()) {
        let events = trace(target, seed, events);
        let mut controller = AdmissionController::new(OnlineConfig::new(4)).unwrap();
        controller.handle_all(&events);
        let admitted = controller.admitted_tasks();
        // Exercise the cycle on every currently admitted task.
        for task in &admitted {
            let id: TaskId = task.id();
            let departed = controller.handle(WorkloadEvent::Depart(id));
            prop_assert_eq!(departed.kind, DecisionKind::Departed);
            let back = controller.handle(WorkloadEvent::Arrive(task.clone()));
            prop_assert!(
                back.is_admission(),
                "re-arrival of {} (u = {:.3}) was rejected",
                id,
                task.utilization()
            );
            prop_assert_eq!(controller.partition().validate(), Ok(()));
            prop_assert!(controller.partition().is_schedulable(controller.config().test));
        }
        prop_assert_eq!(controller.admitted_count(), admitted.len());
    }
}
