//! Property-based determinism contracts of the sharded admission engine.
//!
//! Three invariants, pinned over random churn configurations:
//!
//! * **run determinism** — for any shard count, replaying the same timed
//!   trace through a fresh engine produces a byte-identical processed
//!   event log and a byte-identical decision log (same digests, same
//!   JSON);
//! * **shard-count stream invariance** — with leases off, every shard
//!   count processes the *same* event stream byte for byte: the heap
//!   order and tie-shuffle depend only on the trace and the seed, never
//!   on admission outcomes;
//! * **1-shard legacy equivalence** — a single-shard service is the old
//!   [`AdmissionController`] in every observable way: feeding the
//!   processed event log straight into a legacy controller reproduces the
//!   engine's decision log and counters exactly;
//! * **cross-shard-off grammar pin** — with the cross-shard split
//!   planner disabled (the default), every decision-log line stays in
//!   the pre-cross-shard JSON grammar (reconstructed by hand below) and
//!   the telemetry outcome section carries no cross-shard activity.
//!
//! The vendored proptest runner is deterministically seeded, so these
//! cases reproduce identically on every run.

use proptest::prelude::*;
use spms_online::{
    AdmissionController, ChurnGenerator, Decision, DecisionKind, EventLoop, EventLoopConfig,
    OnlineConfig, ShardedAdmission, TimedEvent,
};
use spms_task::Time;

const CORES: usize = 4;

/// Strategy: a churn configuration plus a shard count on a 4-core platform.
fn engine_config() -> impl Strategy<Value = (f64, u64, usize, usize)> {
    (0.45f64..0.85, any::<u64>(), 24usize..60, 1usize..=CORES)
}

fn trace(target: f64, seed: u64, events: usize) -> Vec<TimedEvent> {
    ChurnGenerator::new()
        .cores(CORES)
        .target_normalized_utilization(target)
        .events(events)
        .seed(seed)
        .generate_timed()
        .expect("valid churn configuration")
}

/// Runs one timed trace through a fresh N-shard engine and returns the
/// engine and its event loop (with the processed log still inside).
fn run_engine(trace: &[TimedEvent], seed: u64, shards: usize) -> (ShardedAdmission, EventLoop) {
    let mut engine = ShardedAdmission::new(OnlineConfig::new(CORES), shards)
        .expect("shard count is between 1 and the core count");
    let mut event_loop = EventLoop::new(
        EventLoopConfig::new(seed)
            .with_rebalance_period(Some(Time::from_millis(250)))
            .with_rebalance_max_moves(4),
    );
    event_loop.load_trace(trace);
    event_loop.run(&mut engine);
    (engine, event_loop)
}

fn json<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("logs serialize")
}

/// Reconstructs one decision line in the grammar that predates the
/// cross-shard planner and lease renewals: the only admission paths are
/// the four single-shard cascade stages, `Admitted` carries `path` and
/// `migrations` (inflation is absent under the default zero cost model),
/// and no `RenewNoted` entries exist. Any flag-off log line escaping this
/// reconstruction is a byte-level regression.
fn pre_cross_shard_line(d: &Decision) -> String {
    let kind = match d.kind {
        DecisionKind::Admitted {
            path, migrations, ..
        } => {
            let path = format!("{path:?}");
            assert_ne!(path, "CrossShardSplit", "flag-off run split across shards");
            format!(r#"{{"Admitted":{{"path":"{path}","migrations":{migrations}}}}}"#)
        }
        DecisionKind::Rejected { reason } => {
            format!(r#"{{"Rejected":{{"reason":"{reason:?}"}}}}"#)
        }
        DecisionKind::Departed => String::from(r#""Departed""#),
        DecisionKind::DepartUnknown => String::from(r#""DepartUnknown""#),
        DecisionKind::RenewNoted => panic!("lease-free run noted a renewal"),
        DecisionKind::EvictedOnFailure => panic!("fault-free run evicted a task"),
    };
    format!(
        r#"{{"event_index":{},"task":{},"kind":{kind}}}"#,
        d.event_index, d.task.0
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// (a) Any shard count replays byte-identically: same processed event
    /// log, same decision log, same counters, run after run.
    #[test]
    fn runs_are_byte_identical_for_any_shard_count(
        (target, seed, events, shards) in engine_config()
    ) {
        let trace = trace(target, seed, events);
        let (engine_a, loop_a) = run_engine(&trace, seed, shards);
        let (engine_b, loop_b) = run_engine(&trace, seed, shards);
        prop_assert_eq!(json(&loop_a.event_log().to_vec()), json(&loop_b.event_log().to_vec()));
        prop_assert_eq!(
            json(&engine_a.decisions().to_vec()),
            json(&engine_b.decisions().to_vec())
        );
        prop_assert_eq!(engine_a.stats(), engine_b.stats());
    }

    /// (b) With leases off, the processed event stream does not depend on
    /// the shard count: admissions and rejections may differ, the stream
    /// may not.
    #[test]
    fn event_stream_is_shard_count_invariant(
        (target, seed, events, _) in engine_config()
    ) {
        let trace = trace(target, seed, events);
        let (_, baseline) = run_engine(&trace, seed, 1);
        let baseline_log = json(&baseline.event_log().to_vec());
        for shards in 2..=CORES {
            let (_, event_loop) = run_engine(&trace, seed, shards);
            prop_assert_eq!(
                &baseline_log,
                &json(&event_loop.event_log().to_vec()),
                "shard count {} changed the processed event stream",
                shards
            );
        }
    }

    /// (c) One shard is the legacy controller: replaying the processed
    /// event log through a plain `AdmissionController` reproduces the
    /// engine's decision log and decision counters byte for byte.
    #[test]
    fn one_shard_equals_the_legacy_controller(
        (target, seed, events, _) in engine_config()
    ) {
        let trace = trace(target, seed, events);
        let (engine, event_loop) = run_engine(&trace, seed, 1);
        let mut legacy = AdmissionController::new(OnlineConfig::new(CORES)).unwrap();
        for timed in event_loop.event_log() {
            legacy.handle(timed.event.clone());
        }
        prop_assert_eq!(
            json(&engine.decisions().to_vec()),
            json(&legacy.decisions().to_vec())
        );
        prop_assert_eq!(&engine.stats().decisions, legacy.stats());
        prop_assert_eq!(engine.admitted_count(), legacy.admitted_count());
        prop_assert_eq!(
            engine.stats().overflow_admissions, 0,
            "a single shard has nowhere to overflow"
        );
    }

    /// (d) Cross-shard split disabled (the default): the decision log is
    /// byte-identical to the hand-reconstructed pre-cross-shard grammar,
    /// and the deterministic telemetry's cross-shard mechanism counters
    /// never move — the refactor onto planning transactions must be
    /// invisible until the flag is thrown.
    #[test]
    fn disabled_cross_shard_runs_stay_in_the_legacy_grammar(
        (target, seed, events, shards) in engine_config()
    ) {
        let trace = trace(target, seed, events);
        let (engine, _) = run_engine(&trace, seed, shards);
        prop_assert!(!engine.cross_shard_enabled());
        for d in engine.decisions() {
            prop_assert_eq!(json(d), pre_cross_shard_line(d));
        }
        let rendered = engine
            .merged_metrics_registry()
            .snapshot(spms_telemetry::SnapshotFilter::Deterministic)
            .render_prometheus();
        for line in rendered.lines() {
            if line.contains("cross_shard") && !line.starts_with('#') {
                prop_assert!(
                    line.ends_with(" 0"),
                    "flag-off run moved a cross-shard counter: {}",
                    line
                );
            }
        }
    }
}
