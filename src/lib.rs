//! # spms — Semi-Partitioned Multi-core Scheduling
//!
//! Umbrella crate for the reproduction of *"Towards the Implementation and
//! Evaluation of Semi-Partitioned Multi-Core Scheduling"* (Zhang, Guan, Yi —
//! PPES 2011). It re-exports every workspace crate under one roof so that
//! examples and downstream users need a single dependency:
//!
//! * [`task`] — sporadic task model and random task-set generation,
//! * [`queues`] — binomial-heap ready queue and red-black-tree sleep queue,
//! * [`cache`] — cache hierarchy and cache-related preemption/migration delay,
//! * [`analysis`] — fixed-priority schedulability analysis and overhead-aware
//!   WCET inflation,
//! * [`core`] — the FP-TS semi-partitioned algorithm and the partitioned
//!   baselines (FFD, WFD, ...),
//! * [`global`] — global scheduling baselines (global RM / EDF tests and a
//!   global scheduler simulator),
//! * [`sim`] — the discrete-event multi-core scheduler simulator,
//! * [`online`] — online admission control and incremental repartitioning
//!   under task churn,
//! * [`faults`] — seeded deterministic fault-injection plans for the online
//!   admission engine,
//! * [`overhead`] — the overhead measurement harness (Table 1),
//! * [`experiments`] — acceptance-ratio and sensitivity experiment drivers.
//!
//! # Quickstart
//!
//! ```
//! use spms::task::{TaskSetGenerator, Time};
//! use spms::core::{Partitioner, SemiPartitionedFpTs, PartitionOutcome};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let task_set = TaskSetGenerator::new()
//!     .task_count(12)
//!     .total_utilization(3.0)
//!     .seed(1)
//!     .generate()?;
//! let algorithm = SemiPartitionedFpTs::default();
//! match algorithm.partition(&task_set, 4)? {
//!     PartitionOutcome::Schedulable(partition) => {
//!         println!("schedulable on 4 cores with {} split tasks", partition.split_count());
//!     }
//!     PartitionOutcome::Unschedulable { .. } => println!("not schedulable"),
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use spms_analysis as analysis;
pub use spms_cache as cache;
pub use spms_core as core;
pub use spms_experiments as experiments;
pub use spms_faults as faults;
pub use spms_global as global;
pub use spms_online as online;
pub use spms_overhead as overhead;
pub use spms_queues as queues;
pub use spms_sim as sim;
pub use spms_task as task;
pub use spms_telemetry as telemetry;
