//! `spms` — the unified experiment CLI.
//!
//! One binary with a subcommand per experiment driver, replacing the need to
//! pick among the one-off examples. Every sweep runs through the shared
//! [`SweepRunner`](spms::experiments::SweepRunner), so `--threads N` scales
//! it across host cores while producing output byte-identical to
//! `--threads 1` under the same `--seed`.
//!
//! ```text
//! spms acceptance --sets-per-point 2 --threads 2 --format json
//! spms cores --core-counts 2,4,8 --threads 0 --format csv
//! spms anatomy --format markdown
//! ```
//!
//! Exit codes: `0` on success, `2` on a usage error.

use spms::analysis::OverheadModel;
use spms::experiments::{
    AcceptanceRatioExperiment, CacheCrossoverExperiment, ChaosExperiment, ChurnExperiment,
    CoreCountSweepExperiment, GlobalComparisonExperiment, NullProgress, OverheadExperiment,
    OverheadSensitivityExperiment, PreemptionAnatomy, ProgressSink, ReportFormat, ReportSink,
    RtaCacheBenchmark, RuntimeCostExperiment, SoakExperiment, StderrProgress,
};
use spms::faults::{FaultPlan, FaultSpec};
use spms::online::{
    parse_trace, ChurnFamily, OnlineConfig, ShardedAdmission, TimedEvent, WorkloadEvent,
};
use spms::overhead::{CostModelSpec, CrpdCostModel};
use spms::task::Time;
use spms::telemetry::{Registry, Snapshot, SnapshotFilter};
use std::io::IsTerminal;
use std::process::ExitCode;

/// `(name, one-line summary, per-command OPTIONS body)` for every
/// subcommand; the single source of truth behind the global usage text and
/// the `spms <command> --help` pages.
const COMMANDS: &[(&str, &str, &str)] = &[
    (
        "acceptance",
        "Acceptance ratio of FP-TS vs FFD vs WFD over a utilization sweep (E5)",
        "    --cores <N>             Number of processors [default: 4]
    --tasks-per-set <N>     Tasks per generated set
    --points <a,b,..>       Normalized-utilization sweep points
    --overhead <zero|n4|n64>  Overhead model folded into the analysis [default: zero]
",
    ),
    (
        "sensitivity",
        "Acceptance-ratio loss as the overhead magnitude is scaled up (E6)",
        "    --scales <a,b,..>       Overhead scaling factors [default: 0,1,5,20]
    --utilization <U>       Normalized utilization [default: 0.9]
    --tasks-per-set <N>     Tasks per generated set
",
    ),
    (
        "cache",
        "Local context-switch vs migration reload cost by working-set size (E4)",
        "    --sizes <a,b,..>        Working-set sizes in bytes
                            (the sweep is deterministic: seeding and
                            replication flags do not apply)
",
    ),
    (
        "anatomy",
        "Figure 1: the annotated timeline of a single preemption (E3)",
        "    (a single deterministic simulation: only --format and --quiet apply)
",
    ),
    (
        "runtime",
        "Simulated preemption/migration/overhead costs of accepted partitions (E8)",
        "    --cores <N>             Number of processors [default: 4]
    --tasks-per-set <N>     Tasks per generated set
    --points <a,b,..>       Normalized-utilization sweep points
    --overhead <zero|n4|n64>  Overhead model folded into the analysis [default: n4]
",
    ),
    (
        "cores",
        "Acceptance ratio as the core count grows (E9)",
        "    --core-counts <a,b,..>  Core counts to sweep [default: 2,4,8,16]
    --tasks-per-core <N>    Tasks generated per core [default: 4]
    --utilization <U>       Normalized utilization [default: 0.85]
    --overhead <zero|n4|n64>  Overhead model folded into the analysis [default: zero]
",
    ),
    (
        "global",
        "Partitioned & semi-partitioned vs sufficient global tests (E10)",
        "    --cores <N>             Number of processors [default: 4]
    --tasks-per-set <N>     Tasks per generated set
    --points <a,b,..>       Normalized-utilization sweep points
    --overhead <zero|n4|n64>  Overhead model folded into the analysis [default: zero]
",
    ),
    (
        "online",
        "Online admission control under task churn: acceptance, paths, replay (E11)",
        "    --cores <N>             Number of processors [default: 4]
    --events <N>            Arrive/depart events per churn trace [default: 120]
    --points <a,b,..>       Target normalized-utilization sweep points
                            [default: 0.5,0.6,0.7,0.8,0.9]
    --repair-moves <K>      Max already-placed tasks relocated per admission
                            (0 disables bounded repair) [default: 2]
    --replay-ms <N>         Simulated milliseconds per admitted-epoch replay;
                            0 disables replay [default: 50]
    --jitter-us <N>         Max sporadic release jitter per job injected by the
                            replay, in microseconds (seeded per trace;
                            0 replays synchronous-periodic) [default: 0]
    --overhead <zero|n4|n64>  Overhead model folded into the admission analysis
                            [default: zero]
    --cost-model <zero|crpd>  Migration cost model the controller charges:
                            every split piece and repair relocation inflates
                            the task's analysis WCET by the model's per-job
                            migration charge [default: zero]
    --churn <poisson|bursty>  Churn-process family driving the traces:
                            memoryless Poisson arrivals or the bursty
                            Markov-modulated variant at the same long-run
                            rate [default: poisson]
    --trace <FILE>          Replay a recorded event log instead of sweeping:
                            one JSON event per line, either timed
                            ({\"at\":..,\"event\":..}, as written by
                            `spms soak --dump-trace`) or a bare
                            arrive/depart event. Only --cores, --shards,
                            --cross-shard-split, --repair-moves,
                            --overhead, --cost-model, --metrics, --format
                            and --quiet apply in trace mode.
    --shards <N>            Admission shards for --trace replay; 1 replays
                            the decision stream byte-identically to the
                            single controller [default: 1]
    --cross-shard-split     Let --trace replay split an otherwise-rejected
                            task across two shards (body on the
                            highest-spare shard, tail on the runner-up);
                            requires --shards of at least 2
    --metrics <FILE>        Write a telemetry snapshot of the run (merged
                            across grid cells in grid order, so the
                            deterministic spms_*/spms_mech_* sections are
                            identical for every --threads value)
    --metrics-format <F>    Snapshot exposition: prom or json [default: prom]
    (--sets-per-point sets the churn traces generated per sweep point)
",
    ),
    (
        "rtabench",
        "Admission-cascade bench: cache, journal rollback, warm probes (E12/E13)",
        "    --cores <N>             Number of processors [default: 4]
    --events <N>            Arrive/depart events per churn trace [default: 120]
    --points <a,b,..>       Target normalized-utilization sweep points
                            [default: 0.6,0.8]
    --repair-moves <K>      Max already-placed tasks relocated per admission
                            [default: 2]
    (--sets-per-point sets the churn traces generated per sweep point;
     drives four controller variants — cached, from-scratch RTA,
     clone-based rollback, cold split probes — asserts their decision logs
     are byte-identical and the journal hot path is clone-free; the
     `timing` object in the output is wall-clock measurement data and is
     the only part that varies run-to-run)
",
    ),
    (
        "soak",
        "Endurance soak of the sharded event-loop admission service (E14)",
        "    --cores <N>             Number of processors [default: 8]
    --shards <a,b,..>       Shard counts to sweep [default: 1,2]
    --events <N>            Workload events per churn trace [default: 10000]
    --utilization <U>       Target normalized utilization [default: 0.6]
    --repair-moves <K>      Max already-placed tasks relocated per admission
                            (0 disables bounded repair) [default: 2]
    --cost-model <zero|crpd>  Migration cost model every shard charges on
                            splits, repairs and rebalance moves [default: zero]
    --rebalance-ms <N>      Simulated milliseconds between work-stealing
                            rebalance ticks; 0 disables [default: 250]
    --rebalance-moves <K>   Max cross-shard migrations per rebalance tick
                            [default: 4]
    --lease-ms <N>          Admission lease in simulated milliseconds; expiry
                            synthesizes a departure (makes the event stream
                            depend on admissions, so the cross-shard-count
                            stream invariant may not hold); 0 disables
                            [default: 0]
    --leased-scenario-ms <N>  Add a leased scenario column: rerun every
                            point with this lease armed and renewal
                            heartbeats injected at half the lease. Unlike
                            --lease-ms the baseline points stay lease-free;
                            the leased per-shard-count digests legitimately
                            diverge. 0 disables [default: 0]
    --cross-shard-split     Add a cross-shard column: rerun every
                            multi-shard point with the cross-shard split
                            planner enabled and report the acceptance it
                            recovers over the walled baseline
    --churn <poisson|bursty>  Churn-process family driving the traces:
                            memoryless Poisson arrivals or the bursty
                            Markov-modulated variant at the same long-run
                            rate [default: poisson]
    --replay-every <N>      Replay every Nth admission's shard through the
                            simulator (the stitched global partition on
                            cross-shard reruns); 0 disables [default: 0]
    --faults <SPEC>         Inject a seeded fault plan drawn against the
                            measured trace horizon: comma-separated knobs
                            crash=N,stall=N,corrupt=N,spike=N,seed=S
                            (faults change the decision stream, so the
                            cross-shard-count digest invariant may not hold;
                            a per-point recovery summary goes to stderr)
    --faults-script <FILE>  Inject this exact JSON-lines fault script (one
                            FaultEvent per line, as written by
                            `spms chaos --dump-plan`) instead of a spec
    --audit-ms <N>          Simulated milliseconds between self-audit ticks,
                            each re-verifying one core's memoized RTA
                            against a scratch recomputation (rebuilding on
                            mismatch); 0 disables [default: 0]
    --dump-trace <FILE>     Write the first trace's processed event log as a
                            JSON-lines file replayable by
                            `spms online --trace`
    --metrics <FILE>        Write a telemetry snapshot of the run (merged
                            across shard counts and traces in grid order;
                            the spms_* outcome section is also identical
                            across shard counts whenever the decision
                            streams agree)
    --metrics-format <F>    Snapshot exposition: prom or json [default: prom]
    (--sets-per-point sets the churn traces generated per shard count;
     the `timing` array in the output and the spms_timing_* metric
     section are wall-clock measurement data and are the only parts that
     vary run-to-run)
",
    ),
    (
        "chaos",
        "Seeded fault injection: shard failover, recovery replay, self-audit (E16)",
        "    --cores <N>             Number of processors [default: 8]
    --shards <a,b,..>       Shard counts to sweep [default: 2]
    --events <N>            Workload events per churn trace [default: 2000]
    --utilization <U>       Target normalized utilization [default: 0.6]
    --faults <SPEC>         Seeded fault mix, comma-separated knobs
                            crash=N,stall=N,corrupt=N,spike=N,seed=S,
                            expanded against the measured trace horizon
                            [default: crash=1,stall=1,corrupt=1,spike=1]
    --faults-script <FILE>  Inject this exact JSON-lines fault script (one
                            FaultEvent per line) instead of generating a
                            plan from --faults
    --audit-ms <N>          Simulated milliseconds between self-audit ticks
                            (the harness's corruption detector; must be at
                            least 1) [default: 100]
    --rebalance-ms <N>      Simulated milliseconds between rebalance ticks;
                            0 disables [default: 250]
    --replay-every <N>      Replay every Nth admission's shard through the
                            simulator; 0 disables [default: 50]
    --dump-plan <FILE>      Write the injected plan as a JSON-lines script
                            replayable via --faults-script
    (--sets-per-point sets the churn traces generated per shard count;
     the report — recovery digest included — is identical for every
     --threads value)
",
    ),
    (
        "overhead",
        "Admission capacity under real CRPD migration charges: zero vs light vs heavy (E15)",
        "    --cores <N>             Number of processors [default: 4]
    --events <N>            Arrive/depart events per churn trace [default: 120]
    --points <a,b,..>       Target normalized-utilization sweep points
                            [default: 0.6,0.75,0.9]
    --repair-moves <K>      Max already-placed tasks relocated per admission
                            [default: 2]
    --replay-ms <N>         Simulated milliseconds per admitted-epoch replay;
                            0 disables replay [default: 50]
    --metrics <FILE>        Write a telemetry snapshot of the run (merged
                            across grid cells in grid order, so the
                            deterministic spms_*/spms_mech_* sections are
                            identical for every --threads value)
    --metrics-format <F>    Snapshot exposition: prom or json [default: prom]
    (--sets-per-point sets the churn traces generated per sweep point;
     the same traces are decided under the zero, crpd-light and crpd-heavy
     cost models, so the acceptance columns are directly comparable)
",
    ),
];

const COMMON_OPTIONS: &str = "\
COMMON OPTIONS:
    --threads <N>         Worker threads for the sweep grid; 0 = one per core [default: 1]
    --seed <N>            Root RNG seed for task-set generation [default: 0]
    --sets-per-point <N>  Task sets generated per sweep point
    --format <F>          Output format: markdown, csv or json [default: markdown]
    --quiet               Suppress the stderr progress line
    --help                Show this help
";

/// The global `spms --help` page.
fn global_usage() -> String {
    let mut out = String::from(
        "spms — semi-partitioned multi-core scheduling experiments (Zhang, Guan, Yi — DATE 2011)\n\n\
         USAGE:\n    spms <COMMAND> [OPTIONS]\n\nCOMMANDS:\n",
    );
    for (name, summary, _) in COMMANDS {
        out.push_str(&format!("    {name:<12} {summary}\n"));
    }
    out.push('\n');
    out.push_str(COMMON_OPTIONS);
    out.push_str(
        "\nRun `spms <COMMAND> --help` for the command-specific options.\n\n\
         Every run is deterministic: with a fixed --seed, any --threads value\n\
         produces byte-identical output.\n",
    );
    out
}

/// Common flags a subcommand rejects rather than ignores (see
/// [`reject_inapplicable`]); the single source of truth shared by the flag
/// parser and the help pages, so `spms <command> --help` never advertises a
/// flag the command refuses.
fn inapplicable_common_flags(command: &str) -> &'static [&'static str] {
    match command {
        // The cache sweep generates no task sets: no RNG, no replications.
        "cache" => &["--seed", "--sets-per-point"],
        // One deterministic simulation: nothing to seed, replicate or fan out.
        "anatomy" => &["--seed", "--sets-per-point", "--threads"],
        _ => &[],
    }
}

/// The `spms <command> --help` page, or `None` for an unknown command.
fn command_usage(command: &str) -> Option<String> {
    let (name, summary, options) = COMMANDS.iter().find(|(name, _, _)| *name == command)?;
    let mut out = format!(
        "spms {name} — {summary}\n\nUSAGE:\n    spms {name} [OPTIONS]\n\nOPTIONS:\n{options}\n"
    );
    let rejected = inapplicable_common_flags(name);
    for line in COMMON_OPTIONS.lines() {
        let flag = line.split_whitespace().next().unwrap_or("");
        if !rejected.contains(&flag) {
            out.push_str(line);
            out.push('\n');
        }
    }
    Some(out)
}

/// A usage error: printed to stderr together with a pointer to `--help`.
struct UsageError(String);

type CliResult<T> = Result<T, UsageError>;

fn usage_error<T>(message: impl Into<String>) -> CliResult<T> {
    Err(UsageError(message.into()))
}

/// Value-free boolean switches (besides the global `--quiet`): listed here
/// so the parser knows not to consume the next argument as their value.
const SWITCHES: &[&str] = &["--cross-shard-split"];

/// Parsed command line: `--key value` pairs plus boolean switches.
struct Flags {
    pairs: Vec<(String, String)>,
    switches: Vec<String>,
    quiet: bool,
}

impl Flags {
    fn parse(args: &[String]) -> CliResult<Flags> {
        let mut pairs = Vec::new();
        let mut switches: Vec<String> = Vec::new();
        let mut quiet = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quiet" => quiet = true,
                key if SWITCHES.contains(&key) => {
                    if switches.iter().any(|existing| existing == key) {
                        return usage_error(format!("{key} given more than once"));
                    }
                    switches.push(key.to_string());
                }
                key if key.starts_with("--") => {
                    let Some(value) = iter.next() else {
                        return usage_error(format!("{key} requires a value"));
                    };
                    if pairs.iter().any(|(existing, _)| existing == key) {
                        return usage_error(format!("{key} given more than once"));
                    }
                    pairs.push((key.to_string(), value.clone()));
                }
                other => return usage_error(format!("unexpected argument `{other}`")),
            }
        }
        Ok(Flags {
            pairs,
            switches,
            quiet,
        })
    }

    /// Removes and returns the value of `key`, if present.
    fn take(&mut self, key: &str) -> Option<String> {
        let index = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(index).1)
    }

    /// Removes a boolean switch, returning whether it was given.
    fn take_switch(&mut self, key: &str) -> bool {
        let index = self.switches.iter().position(|k| k == key);
        match index {
            Some(index) => {
                self.switches.remove(index);
                true
            }
            None => false,
        }
    }

    fn take_usize(&mut self, key: &str) -> CliResult<Option<usize>> {
        self.take_parsed(key, "a non-negative integer")
    }

    fn take_u64(&mut self, key: &str) -> CliResult<Option<u64>> {
        self.take_parsed(key, "a non-negative integer")
    }

    fn take_f64(&mut self, key: &str) -> CliResult<Option<f64>> {
        self.take_parsed(key, "a number")
    }

    fn take_parsed<T: std::str::FromStr>(
        &mut self,
        key: &str,
        expected: &str,
    ) -> CliResult<Option<T>> {
        match self.take(key) {
            None => Ok(None),
            Some(raw) => match raw.parse() {
                Ok(value) => Ok(Some(value)),
                Err(_) => usage_error(format!("{key} expects {expected}, got `{raw}`")),
            },
        }
    }

    /// Removes and parses a comma-separated list, e.g. `--points 0.5,0.9`.
    fn take_list<T: std::str::FromStr>(&mut self, key: &str) -> CliResult<Option<Vec<T>>> {
        match self.take(key) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|item| item.trim().parse())
                .collect::<Result<Vec<T>, _>>()
                .map(Some)
                .map_err(|_| {
                    UsageError(format!("{key} expects a comma-separated list, got `{raw}`"))
                }),
        }
    }

    /// Errors if any flag was not consumed by the subcommand.
    fn expect_empty(&self, command: &str) -> CliResult<()> {
        if let Some(key) = self.switches.first() {
            return usage_error(format!("`spms {command}` does not support {key}"));
        }
        match self.pairs.first() {
            None => Ok(()),
            Some((key, _)) => usage_error(format!("`spms {command}` does not support {key}")),
        }
    }
}

/// The flags shared by every subcommand.
struct CommonFlags {
    threads: usize,
    seed: u64,
    sets_per_point: Option<usize>,
    format: ReportFormat,
    quiet: bool,
}

impl CommonFlags {
    fn take(flags: &mut Flags) -> CliResult<CommonFlags> {
        let format = match flags.take("--format") {
            None => ReportFormat::Markdown,
            Some(raw) => match ReportFormat::parse(&raw) {
                Some(format) => format,
                None => {
                    return usage_error(format!(
                        "--format expects markdown, csv or json, got `{raw}`"
                    ))
                }
            },
        };
        Ok(CommonFlags {
            threads: flags.take_usize("--threads")?.unwrap_or(1),
            seed: flags.take_u64("--seed")?.unwrap_or(0),
            sets_per_point: flags.take_usize("--sets-per-point")?,
            format,
            quiet: flags.quiet,
        })
    }

    /// The progress sink: a stderr status line when attached to a terminal,
    /// silent otherwise (so piping JSON to a file stays clean).
    fn progress(&self, label: &str) -> Box<dyn ProgressSink> {
        if self.quiet || !std::io::stderr().is_terminal() {
            Box::new(NullProgress)
        } else {
            Box::new(StderrProgress::new(label))
        }
    }
}

fn take_overhead(flags: &mut Flags, default: OverheadModel) -> CliResult<OverheadModel> {
    match flags.take("--overhead").as_deref() {
        None => Ok(default),
        Some("zero") => Ok(OverheadModel::zero()),
        Some("n4") => Ok(OverheadModel::paper_n4()),
        Some("n64") => Ok(OverheadModel::paper_n64()),
        Some(other) => usage_error(format!("--overhead expects zero, n4 or n64, got `{other}`")),
    }
}

/// Formats results through the shared [`ReportSink`]: markdown, CSV or the
/// JSON envelope the CI benchmark artifacts diff.
fn render<T: serde::Serialize>(
    experiment: &str,
    common: &CommonFlags,
    results: &T,
    markdown: impl FnOnce() -> String,
    csv: impl FnOnce() -> String,
) -> CliResult<String> {
    ReportSink::new(experiment, common.format)
        .seed(common.seed)
        .threads(common.threads)
        .render(results, markdown, csv)
        .map_err(|e| UsageError(e.to_string()))
}

/// The `--metrics-format` exposition formats.
#[derive(Clone, Copy)]
enum MetricsFormat {
    Prometheus,
    Json,
}

/// Parses the `--metrics <FILE>` / `--metrics-format <prom|json>` pair
/// shared by the `online`, `soak` and `overhead` subcommands.
fn take_metrics(flags: &mut Flags) -> CliResult<Option<(String, MetricsFormat)>> {
    let path = flags.take("--metrics");
    let format_raw = flags.take("--metrics-format");
    let Some(path) = path else {
        return match format_raw {
            None => Ok(None),
            Some(_) => usage_error("--metrics-format requires --metrics"),
        };
    };
    let format = match format_raw.as_deref() {
        None | Some("prom") => MetricsFormat::Prometheus,
        Some("json") => MetricsFormat::Json,
        Some(other) => {
            return usage_error(format!(
                "--metrics-format expects prom or json, got `{other}`"
            ))
        }
    };
    Ok(Some((path, format)))
}

/// Writes a full registry snapshot to `path`. The Prometheus writer
/// re-parses its own output first, so a malformed exposition fails the run
/// instead of poisoning a scrape endpoint or a CI diff.
fn write_metrics(path: &str, format: MetricsFormat, registry: &Registry) -> CliResult<()> {
    let snapshot = registry.snapshot(SnapshotFilter::Full);
    let text = match format {
        MetricsFormat::Prometheus => {
            let text = snapshot.render_prometheus();
            Snapshot::from_prometheus(&text)
                .map_err(|e| UsageError(format!("rendered metrics failed to re-parse: {e}")))?;
            text
        }
        MetricsFormat::Json => serde_json::to_string(&snapshot)
            .map_err(|e| UsageError(format!("serializing metrics failed: {e}")))?,
    };
    std::fs::write(path, text)
        .map_err(|e| UsageError(format!("writing metrics `{path}` failed: {e}")))
}

/// Where a run's fault plan comes from: nowhere (fault-free), a seeded
/// `--faults` spec expanded against the measured horizon, or an exact
/// `--faults-script` JSON-lines scenario.
enum FaultSource {
    None,
    Spec(FaultSpec),
    Script(FaultPlan),
}

/// Parses the mutually exclusive `--faults <SPEC>` / `--faults-script
/// <FILE>` pair shared by `soak` and `chaos`. An all-zero spec is a usage
/// error: a typoed chaos run must not quietly test nothing.
fn take_fault_source(flags: &mut Flags) -> CliResult<FaultSource> {
    let spec_raw = flags.take("--faults");
    let script_path = flags.take("--faults-script");
    if spec_raw.is_some() && script_path.is_some() {
        return usage_error("--faults and --faults-script are mutually exclusive");
    }
    if let Some(raw) = spec_raw {
        let spec = FaultSpec::parse(&raw).map_err(|e| UsageError(format!("--faults: {e}")))?;
        if spec.event_count() == 0 {
            return usage_error("--faults schedules no faults (try crash=1)");
        }
        return Ok(FaultSource::Spec(spec));
    }
    if let Some(path) = script_path {
        let raw = std::fs::read_to_string(&path)
            .map_err(|e| UsageError(format!("reading fault script `{path}` failed: {e}")))?;
        let plan = FaultPlan::from_script(&raw)
            .map_err(|e| UsageError(format!("fault script `{path}`: {e}")))?;
        return Ok(FaultSource::Script(plan));
    }
    Ok(FaultSource::None)
}

/// Parses the `--cost-model` flag: `zero` charges nothing (the default);
/// `crpd` charges the mixed hash-spread CRPD model, so each task's
/// migration price follows its attributed working set.
fn take_cost_model(flags: &mut Flags) -> CliResult<CostModelSpec> {
    match flags.take("--cost-model").as_deref() {
        None | Some("zero") => Ok(CostModelSpec::Zero),
        Some("crpd") => Ok(CostModelSpec::Crpd(CrpdCostModel::mixed())),
        Some(other) => usage_error(format!("--cost-model expects zero or crpd, got `{other}`")),
    }
}

/// Parses the `--churn` flag shared by `online` and `soak`: `poisson`
/// (the default) or `bursty` (Markov-modulated arrivals at the same
/// long-run rate).
fn take_churn(flags: &mut Flags) -> CliResult<ChurnFamily> {
    match flags.take("--churn") {
        None => Ok(ChurnFamily::Poisson),
        Some(raw) => raw
            .parse()
            .map_err(|e: String| UsageError(format!("--churn: {e}"))),
    }
}

fn run_acceptance(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = AcceptanceRatioExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_point(sets);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        experiment = experiment.cores(cores);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-set")? {
        experiment = experiment.tasks_per_set(tasks);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::zero())?);
    flags.expect_empty("acceptance")?;
    let results = experiment.run_with_progress(common.progress("acceptance").as_ref());
    render(
        "acceptance",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_sensitivity(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = OverheadSensitivityExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_scale(sets);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-set")? {
        experiment = experiment.tasks_per_set(tasks);
    }
    if let Some(scales) = flags.take_list("--scales")? {
        experiment = experiment.scales(scales);
    }
    if let Some(u) = flags.take_f64("--utilization")? {
        experiment = experiment.normalized_utilization(u);
    }
    flags.expect_empty("sensitivity")?;
    let results = experiment.run_with_progress(common.progress("sensitivity").as_ref());
    render(
        "sensitivity",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

/// Rejects common flags that a subcommand would otherwise silently ignore
/// (e.g. `--seed` on the deterministic `cache` sweep). Must run before
/// [`CommonFlags::take`], which consumes every common flag it knows.
fn reject_inapplicable(flags: &mut Flags, command: &str, keys: &[&str]) -> CliResult<()> {
    for key in keys {
        if flags.take(key).is_some() {
            return usage_error(format!("`spms {command}` does not support {key}"));
        }
    }
    Ok(())
}

fn run_cache(mut flags: Flags) -> CliResult<String> {
    reject_inapplicable(&mut flags, "cache", inapplicable_common_flags("cache"))?;
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = CacheCrossoverExperiment::new().threads(common.threads);
    if let Some(sizes) = flags.take_list("--sizes")? {
        experiment = experiment.working_set_sizes(sizes);
    }
    flags.expect_empty("cache")?;
    let results = experiment.run_with_progress(common.progress("cache").as_ref());
    render(
        "cache",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_anatomy(mut flags: Flags) -> CliResult<String> {
    reject_inapplicable(&mut flags, "anatomy", inapplicable_common_flags("anatomy"))?;
    let common = CommonFlags::take(&mut flags)?;
    flags.expect_empty("anatomy")?;
    let report = PreemptionAnatomy::new().run();
    render(
        "anatomy",
        &common,
        &report,
        || report.render_markdown(),
        || report.render_csv(),
    )
}

fn run_runtime(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = RuntimeCostExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_point(sets);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        experiment = experiment.cores(cores);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-set")? {
        experiment = experiment.tasks_per_set(tasks);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::paper_n4())?);
    flags.expect_empty("runtime")?;
    let results = experiment.run_with_progress(common.progress("runtime").as_ref());
    render(
        "runtime",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_cores(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = CoreCountSweepExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_point(sets);
    }
    if let Some(counts) = flags.take_list("--core-counts")? {
        experiment = experiment.core_counts(counts);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-core")? {
        experiment = experiment.tasks_per_core(tasks);
    }
    if let Some(u) = flags.take_f64("--utilization")? {
        experiment = experiment.normalized_utilization(u);
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::zero())?);
    flags.expect_empty("cores")?;
    let results = experiment.run_with_progress(common.progress("cores").as_ref());
    render(
        "cores",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_global(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = GlobalComparisonExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_point(sets);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        experiment = experiment.cores(cores);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-set")? {
        experiment = experiment.tasks_per_set(tasks);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::zero())?);
    flags.expect_empty("global")?;
    let results = experiment.run_with_progress(common.progress("global").as_ref());
    render(
        "global",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_online(mut flags: Flags) -> CliResult<String> {
    if let Some(path) = flags.take("--trace") {
        return run_online_trace(&path, flags);
    }
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = ChurnExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(traces) = common.sets_per_point {
        experiment = experiment.traces_per_point(traces);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        // An invalid churn configuration would otherwise be swallowed per
        // grid cell (the sweep skips failed cells), reporting an all-zero
        // table instead of an error.
        if cores == 0 {
            return usage_error("--cores must be at least 1");
        }
        experiment = experiment.cores(cores);
    }
    if let Some(events) = flags.take_usize("--events")? {
        if events == 0 {
            return usage_error("--events must be at least 1");
        }
        experiment = experiment.events_per_trace(events);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    if let Some(moves) = flags.take_usize("--repair-moves")? {
        experiment = experiment.max_repair_moves(moves);
    }
    if let Some(ms) = flags.take_u64("--replay-ms")? {
        experiment = experiment.replay_duration((ms > 0).then(|| Time::from_millis(ms)));
    }
    if let Some(us) = flags.take_u64("--jitter-us")? {
        experiment = experiment.release_jitter(Time::from_micros(us));
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::zero())?);
    experiment = experiment.cost_model(take_cost_model(&mut flags)?);
    experiment = experiment.churn_family(take_churn(&mut flags)?);
    let metrics = take_metrics(&mut flags)?;
    flags.expect_empty("online")?;
    let run = experiment.run_full_with_progress(common.progress("online").as_ref());
    if let Some((path, format)) = &metrics {
        write_metrics(path, *format, &run.metrics)?;
    }
    let results = run.results;
    render(
        "online",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

/// What `spms online --trace` reports: the decision counters of one replay
/// of a recorded event log through the sharded admission service.
#[derive(serde::Serialize)]
struct TraceReplayReport {
    shards: usize,
    events: u64,
    arrivals: u64,
    admitted: u64,
    rejected: u64,
    departures: u64,
    overflow_admissions: u64,
    acceptance_ratio: f64,
    inflation_charged_ns: u64,
    decisions_digest: u64,
}

impl TraceReplayReport {
    fn render_markdown(&self) -> String {
        format!(
            "| shards | events | arrivals | admitted | rejected | departures | overflow | acceptance | inflate µs | decisions digest |\n\
             |---|---|---|---|---|---|---|---|---|---|\n\
             | {} | {} | {} | {} | {} | {} | {} | {:.4} | {} | {:#018x} |\n",
            self.shards,
            self.events,
            self.arrivals,
            self.admitted,
            self.rejected,
            self.departures,
            self.overflow_admissions,
            self.acceptance_ratio,
            self.inflation_charged_ns / 1_000,
            self.decisions_digest,
        )
    }

    fn render_csv(&self) -> String {
        format!(
            "shards,events,arrivals,admitted,rejected,departures,overflow_admissions,acceptance_ratio,inflation_charged_ns,decisions_digest\n\
             {},{},{},{},{},{},{},{:.4},{},{:#018x}\n",
            self.shards,
            self.events,
            self.arrivals,
            self.admitted,
            self.rejected,
            self.departures,
            self.overflow_admissions,
            self.acceptance_ratio,
            self.inflation_charged_ns,
            self.decisions_digest,
        )
    }
}

/// FNV-1a over a byte string — the same digest function the soak experiment
/// uses, so two replays of the same trace can be compared by one number.
fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;
    bytes
        .iter()
        .fold(OFFSET, |acc, b| (acc ^ u64::from(*b)).wrapping_mul(PRIME))
}

/// Reads a JSON-lines event log, delegating the parsing (and its typed,
/// line-numbered errors) to [`spms::online::parse_trace`].
fn read_trace(path: &str) -> CliResult<Vec<WorkloadEvent>> {
    let raw = std::fs::read_to_string(path)
        .map_err(|e| UsageError(format!("reading trace `{path}` failed: {e}")))?;
    parse_trace(&raw).map_err(|e| UsageError(format!("trace `{path}`: {e}")))
}

/// Writes a captured processed-event log as a JSON-lines trace file.
fn write_trace(path: &str, trace: &[TimedEvent]) -> CliResult<()> {
    let mut out = String::new();
    for event in trace {
        let line = serde_json::to_string(event)
            .map_err(|e| UsageError(format!("serializing trace event failed: {e}")))?;
        out.push_str(&line);
        out.push('\n');
    }
    std::fs::write(path, out).map_err(|e| UsageError(format!("writing trace `{path}` failed: {e}")))
}

/// `spms online --trace <file>`: replays a recorded event log through the
/// sharded admission service and reports the decision counters plus the
/// decision-log digest.
fn run_online_trace(path: &str, mut flags: Flags) -> CliResult<String> {
    // Trace mode neither generates task sets nor sweeps a grid, so the
    // sweep-only flags are rejected rather than silently ignored.
    reject_inapplicable(
        &mut flags,
        "online --trace",
        &[
            "--seed",
            "--sets-per-point",
            "--threads",
            "--points",
            "--events",
            "--replay-ms",
            "--jitter-us",
            "--churn",
        ],
    )?;
    let common = CommonFlags::take(&mut flags)?;
    let cores = flags.take_usize("--cores")?.unwrap_or(4);
    if cores == 0 {
        return usage_error("--cores must be at least 1");
    }
    let shards = flags.take_usize("--shards")?.unwrap_or(1);
    let repair_moves = flags.take_usize("--repair-moves")?.unwrap_or(2);
    let cross_shard_split = flags.take_switch("--cross-shard-split");
    if cross_shard_split && shards < 2 {
        return usage_error("--cross-shard-split requires --shards of at least 2");
    }
    let overhead = take_overhead(&mut flags, OverheadModel::zero())?;
    let cost_model = take_cost_model(&mut flags)?;
    let metrics = take_metrics(&mut flags)?;
    flags.expect_empty("online")?;

    let events = read_trace(path)?;
    let config = OnlineConfig::builder()
        .cores(cores)
        .max_repair_moves(repair_moves)
        .overhead(overhead)
        .cost_model(cost_model)
        .cross_shard_split(cross_shard_split)
        .build();
    let mut service =
        ShardedAdmission::new(config, shards).map_err(|e| UsageError(e.to_string()))?;
    service.handle_all(&events);
    if let Some((path, format)) = &metrics {
        write_metrics(path, *format, &service.merged_metrics_registry())?;
    }
    let stats = *service.stats();
    let log = serde_json::to_string(&service.decisions().to_vec())
        .map_err(|e| UsageError(format!("serializing decisions failed: {e}")))?;
    let report = TraceReplayReport {
        shards,
        events: service.decisions().len() as u64,
        arrivals: stats.decisions.arrivals,
        admitted: stats.decisions.admitted,
        rejected: stats.decisions.rejected,
        departures: stats.decisions.departures,
        overflow_admissions: stats.overflow_admissions,
        acceptance_ratio: stats.decisions.acceptance_ratio(),
        inflation_charged_ns: stats.decisions.inflation_charged_ns,
        decisions_digest: fnv1a(log.as_bytes()),
    };
    render(
        "online-trace",
        &common,
        &report,
        || report.render_markdown(),
        || report.render_csv(),
    )
}

fn run_soak(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = SoakExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(traces) = common.sets_per_point {
        experiment = experiment.traces_per_point(traces);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        if cores == 0 {
            return usage_error("--cores must be at least 1");
        }
        experiment = experiment.cores(cores);
    }
    if let Some(shards) = flags.take_list::<usize>("--shards")? {
        if shards.is_empty() || shards.contains(&0) {
            return usage_error("--shards expects shard counts of at least 1");
        }
        experiment = experiment.shard_counts(shards);
    }
    if let Some(events) = flags.take_usize("--events")? {
        if events == 0 {
            return usage_error("--events must be at least 1");
        }
        experiment = experiment.events_per_trace(events);
    }
    if let Some(u) = flags.take_f64("--utilization")? {
        experiment = experiment.target_utilization(u);
    }
    if let Some(moves) = flags.take_usize("--repair-moves")? {
        experiment = experiment.max_repair_moves(moves);
    }
    experiment = experiment.cost_model(take_cost_model(&mut flags)?);
    if let Some(ms) = flags.take_u64("--rebalance-ms")? {
        experiment = experiment.rebalance_period((ms > 0).then(|| Time::from_millis(ms)));
    }
    if let Some(moves) = flags.take_usize("--rebalance-moves")? {
        experiment = experiment.rebalance_max_moves(moves);
    }
    if let Some(ms) = flags.take_u64("--lease-ms")? {
        experiment = experiment.lease((ms > 0).then(|| Time::from_millis(ms)));
    }
    if let Some(ms) = flags.take_u64("--leased-scenario-ms")? {
        experiment = experiment.leased_scenario((ms > 0).then(|| Time::from_millis(ms)));
    }
    experiment = experiment.cross_shard(flags.take_switch("--cross-shard-split"));
    experiment = experiment.churn_family(take_churn(&mut flags)?);
    if let Some(every) = flags.take_usize("--replay-every")? {
        experiment = experiment.replay_sample_every(every);
    }
    if let Some(ms) = flags.take_u64("--audit-ms")? {
        experiment = experiment.audit_period((ms > 0).then(|| Time::from_millis(ms)));
    }
    let fault_source = take_fault_source(&mut flags)?;
    let dump_trace = flags.take("--dump-trace");
    if dump_trace.is_some() {
        experiment = experiment.capture_trace(true);
    }
    let metrics = take_metrics(&mut flags)?;
    flags.expect_empty("soak")?;
    // The spec is expanded only after every knob that shapes the first
    // trace (cores, events, utilization, churn, seed) has been applied.
    let fault_plan = match fault_source {
        FaultSource::None => None,
        FaultSource::Spec(spec) => Some(experiment.plan_faults(&spec)),
        FaultSource::Script(plan) => Some(plan),
    };
    let faults_armed = fault_plan.is_some();
    experiment = experiment.faults(fault_plan);
    let run = experiment.run_full_with_progress(common.progress("soak").as_ref());
    if faults_armed && !common.quiet {
        // Recovery counters go to stderr: the serialized soak artifact
        // stays byte-identical to a fault-free build when faults are off,
        // and `spms chaos` is the command that reports them as data.
        for (point, fault) in run.results.points().iter().zip(&run.fault_stats) {
            eprintln!(
                "fault summary [shards={}]: injected={} crashes={} stalls={} \
                 corruptions={} cost_spikes={} drained={} recovered={} evicted={} \
                 rejoins={} audits={} violations={} repaired={}",
                point.shards,
                fault.injections,
                fault.crashes,
                fault.stalls,
                fault.corruptions,
                fault.cost_spikes,
                fault.drained,
                fault.recoveries,
                fault.evictions,
                fault.rejoins,
                fault.audit_checks,
                fault.audit_violations,
                fault.audit_repairs,
            );
        }
    }
    if let Some(path) = &dump_trace {
        let trace = run
            .captured_trace
            .ok_or_else(|| UsageError("no trace captured: the first grid cell failed".into()))?;
        write_trace(path, &trace)?;
    }
    if let Some((path, format)) = &metrics {
        write_metrics(path, *format, &run.metrics)?;
    }
    let results = run.results;
    render(
        "soak",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_chaos(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = ChaosExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(traces) = common.sets_per_point {
        experiment = experiment.traces_per_point(traces);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        if cores == 0 {
            return usage_error("--cores must be at least 1");
        }
        experiment = experiment.cores(cores);
    }
    if let Some(shards) = flags.take_list::<usize>("--shards")? {
        if shards.is_empty() || shards.contains(&0) {
            return usage_error("--shards expects shard counts of at least 1");
        }
        experiment = experiment.shard_counts(shards);
    }
    if let Some(events) = flags.take_usize("--events")? {
        if events == 0 {
            return usage_error("--events must be at least 1");
        }
        experiment = experiment.events_per_trace(events);
    }
    if let Some(u) = flags.take_f64("--utilization")? {
        experiment = experiment.target_utilization(u);
    }
    if let Some(ms) = flags.take_u64("--audit-ms")? {
        if ms == 0 {
            return usage_error(
                "--audit-ms must be at least 1: the self-audit is the \
                 chaos harness's corruption detector",
            );
        }
        experiment = experiment.audit_period(Time::from_millis(ms));
    }
    if let Some(ms) = flags.take_u64("--rebalance-ms")? {
        experiment = experiment.rebalance_period((ms > 0).then(|| Time::from_millis(ms)));
    }
    if let Some(every) = flags.take_usize("--replay-every")? {
        experiment = experiment.replay_sample_every(every);
    }
    experiment = match take_fault_source(&mut flags)? {
        // A bare `spms chaos` injects one fault of each kind rather than
        // an empty plan, so the default run actually exercises failover.
        FaultSource::None => experiment.spec(FaultSpec {
            crashes: 1,
            stalls: 1,
            corruptions: 1,
            cost_spikes: 1,
            ..FaultSpec::default()
        }),
        FaultSource::Spec(spec) => experiment.spec(spec),
        FaultSource::Script(plan) => experiment.script(Some(plan)),
    };
    let dump_plan = flags.take("--dump-plan");
    flags.expect_empty("chaos")?;
    let results = experiment.run_with_progress(common.progress("chaos").as_ref());
    if let Some(path) = &dump_plan {
        std::fs::write(path, results.plan.to_script())
            .map_err(|e| UsageError(format!("writing fault plan `{path}` failed: {e}")))?;
    }
    render(
        "chaos",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_rtabench(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = RtaCacheBenchmark::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(traces) = common.sets_per_point {
        experiment = experiment.traces_per_point(traces);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        if cores == 0 {
            return usage_error("--cores must be at least 1");
        }
        experiment = experiment.cores(cores);
    }
    if let Some(events) = flags.take_usize("--events")? {
        if events == 0 {
            return usage_error("--events must be at least 1");
        }
        experiment = experiment.events_per_trace(events);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    if let Some(moves) = flags.take_usize("--repair-moves")? {
        experiment = experiment.max_repair_moves(moves);
    }
    flags.expect_empty("rtabench")?;
    let results = experiment.run_with_progress(common.progress("rtabench").as_ref());
    render(
        "rtabench",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_overhead(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = OverheadExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(traces) = common.sets_per_point {
        experiment = experiment.traces_per_point(traces);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        if cores == 0 {
            return usage_error("--cores must be at least 1");
        }
        experiment = experiment.cores(cores);
    }
    if let Some(events) = flags.take_usize("--events")? {
        if events == 0 {
            return usage_error("--events must be at least 1");
        }
        experiment = experiment.events_per_trace(events);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    if let Some(moves) = flags.take_usize("--repair-moves")? {
        experiment = experiment.max_repair_moves(moves);
    }
    if let Some(ms) = flags.take_u64("--replay-ms")? {
        experiment = experiment.replay_duration((ms > 0).then(|| Time::from_millis(ms)));
    }
    let metrics = take_metrics(&mut flags)?;
    flags.expect_empty("overhead")?;
    let run = experiment.run_full_with_progress(common.progress("overhead").as_ref());
    if let Some((path, format)) = &metrics {
        write_metrics(path, *format, &run.metrics)?;
    }
    let results = run.results;
    render(
        "overhead",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn dispatch(command: &str, flags: Flags) -> CliResult<String> {
    match command {
        "acceptance" => run_acceptance(flags),
        "sensitivity" => run_sensitivity(flags),
        "cache" => run_cache(flags),
        "anatomy" => run_anatomy(flags),
        "runtime" => run_runtime(flags),
        "cores" => run_cores(flags),
        "global" => run_global(flags),
        "online" => run_online(flags),
        "rtabench" => run_rtabench(flags),
        "soak" => run_soak(flags),
        "chaos" => run_chaos(flags),
        "overhead" => run_overhead(flags),
        other => usage_error(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        // `spms <command> --help` prints the command-specific page; a bare
        // `--help` (or an unknown command) prints the global one.
        match args.first().and_then(|c| command_usage(c)) {
            Some(page) => print!("{page}"),
            None => print!("{}", global_usage()),
        }
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        // A missing command is an error: keep stdout clean for data so
        // `spms > out.json` pipelines fail without polluting the file.
        eprint!("{}", global_usage());
        return ExitCode::from(2);
    }
    let command = args[0].clone();
    let flags = match Flags::parse(&args[1..]) {
        Ok(flags) => flags,
        Err(UsageError(message)) => {
            eprintln!("error: {message}\nrun `spms --help` for usage");
            return ExitCode::from(2);
        }
    };
    let code = match dispatch(&command, flags) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(UsageError(message)) => {
            eprintln!("error: {message}\nrun `spms --help` for usage");
            ExitCode::from(2)
        }
    };
    // Deep library code (the RTA iteration-cap guard, recovery paths)
    // records once-per-run diagnostics instead of writing to stderr
    // behind our back; surface them here, after the data output.
    for warning in spms::telemetry::drain_warnings() {
        if warning.count > 1 {
            eprintln!(
                "warning: {} ({} occurrences)",
                warning.message, warning.count
            );
        } else {
            eprintln!("warning: {}", warning.message);
        }
    }
    code
}
