//! `spms` — the unified experiment CLI.
//!
//! One binary with a subcommand per experiment driver, replacing the need to
//! pick among the one-off examples. Every sweep runs through the shared
//! [`SweepRunner`](spms::experiments::SweepRunner), so `--threads N` scales
//! it across host cores while producing output byte-identical to
//! `--threads 1` under the same `--seed`.
//!
//! ```text
//! spms acceptance --sets-per-point 2 --threads 2 --format json
//! spms cores --core-counts 2,4,8 --threads 0 --format csv
//! spms anatomy --format markdown
//! ```
//!
//! Exit codes: `0` on success, `2` on a usage error.

use spms::analysis::OverheadModel;
use spms::experiments::{
    AcceptanceRatioExperiment, CacheCrossoverExperiment, CoreCountSweepExperiment,
    GlobalComparisonExperiment, NullProgress, OverheadSensitivityExperiment, PreemptionAnatomy,
    ProgressSink, RuntimeCostExperiment, StderrProgress,
};
use std::io::IsTerminal;
use std::process::ExitCode;

const USAGE: &str = "\
spms — semi-partitioned multi-core scheduling experiments (Zhang, Guan, Yi — DATE 2011)

USAGE:
    spms <COMMAND> [OPTIONS]

COMMANDS:
    acceptance   Acceptance ratio of FP-TS vs FFD vs WFD over a utilization sweep (E5)
    sensitivity  Acceptance-ratio loss as the overhead magnitude is scaled up (E6)
    cache        Local context-switch vs migration reload cost by working-set size (E4)
    anatomy      Figure 1: the annotated timeline of a single preemption (E3)
    runtime      Simulated preemption/migration/overhead costs of accepted partitions (E8)
    cores        Acceptance ratio as the core count grows (E9)
    global       Partitioned & semi-partitioned vs sufficient global tests (E10)

COMMON OPTIONS:
    --threads <N>         Worker threads for the sweep grid; 0 = one per core [default: 1]
    --seed <N>            Root RNG seed for task-set generation [default: 0]
    --sets-per-point <N>  Task sets generated per sweep point
    --format <F>          Output format: markdown, csv or json [default: markdown]
    --quiet               Suppress the stderr progress line
    --help                Show this help

PER-COMMAND OPTIONS:
    acceptance | runtime | global:
        --cores <N>             Number of processors [default: 4]
        --tasks-per-set <N>     Tasks per generated set
        --points <a,b,..>       Normalized-utilization sweep points
        --overhead <zero|n4|n64>  Overhead model folded into the analysis
    cores:
        --core-counts <a,b,..>  Core counts to sweep [default: 2,4,8,16]
        --tasks-per-core <N>    Tasks generated per core [default: 4]
        --utilization <U>       Normalized utilization [default: 0.85]
        --overhead <zero|n4|n64>
    sensitivity:
        --scales <a,b,..>       Overhead scaling factors [default: 0,1,5,20]
        --utilization <U>       Normalized utilization [default: 0.9]
        --tasks-per-set <N>
    cache:
        --sizes <a,b,..>        Working-set sizes in bytes
                                (deterministic: --seed / --sets-per-point do not apply)
    anatomy:
        (a single deterministic simulation: only --format and --quiet apply)

Every run is deterministic: with a fixed --seed, any --threads value
produces byte-identical output.
";

/// A usage error: printed to stderr together with a pointer to `--help`.
struct UsageError(String);

type CliResult<T> = Result<T, UsageError>;

fn usage_error<T>(message: impl Into<String>) -> CliResult<T> {
    Err(UsageError(message.into()))
}

/// Parsed command line: `--key value` pairs plus boolean switches.
struct Flags {
    pairs: Vec<(String, String)>,
    quiet: bool,
}

impl Flags {
    fn parse(args: &[String]) -> CliResult<Flags> {
        let mut pairs = Vec::new();
        let mut quiet = false;
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quiet" => quiet = true,
                key if key.starts_with("--") => {
                    let Some(value) = iter.next() else {
                        return usage_error(format!("{key} requires a value"));
                    };
                    if pairs.iter().any(|(existing, _)| existing == key) {
                        return usage_error(format!("{key} given more than once"));
                    }
                    pairs.push((key.to_string(), value.clone()));
                }
                other => return usage_error(format!("unexpected argument `{other}`")),
            }
        }
        Ok(Flags { pairs, quiet })
    }

    /// Removes and returns the value of `key`, if present.
    fn take(&mut self, key: &str) -> Option<String> {
        let index = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(index).1)
    }

    fn take_usize(&mut self, key: &str) -> CliResult<Option<usize>> {
        self.take_parsed(key, "a non-negative integer")
    }

    fn take_u64(&mut self, key: &str) -> CliResult<Option<u64>> {
        self.take_parsed(key, "a non-negative integer")
    }

    fn take_f64(&mut self, key: &str) -> CliResult<Option<f64>> {
        self.take_parsed(key, "a number")
    }

    fn take_parsed<T: std::str::FromStr>(
        &mut self,
        key: &str,
        expected: &str,
    ) -> CliResult<Option<T>> {
        match self.take(key) {
            None => Ok(None),
            Some(raw) => match raw.parse() {
                Ok(value) => Ok(Some(value)),
                Err(_) => usage_error(format!("{key} expects {expected}, got `{raw}`")),
            },
        }
    }

    /// Removes and parses a comma-separated list, e.g. `--points 0.5,0.9`.
    fn take_list<T: std::str::FromStr>(&mut self, key: &str) -> CliResult<Option<Vec<T>>> {
        match self.take(key) {
            None => Ok(None),
            Some(raw) => raw
                .split(',')
                .map(|item| item.trim().parse())
                .collect::<Result<Vec<T>, _>>()
                .map(Some)
                .map_err(|_| {
                    UsageError(format!("{key} expects a comma-separated list, got `{raw}`"))
                }),
        }
    }

    /// Errors if any flag was not consumed by the subcommand.
    fn expect_empty(&self, command: &str) -> CliResult<()> {
        match self.pairs.first() {
            None => Ok(()),
            Some((key, _)) => usage_error(format!("`spms {command}` does not support {key}")),
        }
    }
}

/// The flags shared by every subcommand.
struct CommonFlags {
    threads: usize,
    seed: u64,
    sets_per_point: Option<usize>,
    format: OutputFormat,
    quiet: bool,
}

impl CommonFlags {
    fn take(flags: &mut Flags) -> CliResult<CommonFlags> {
        let format = match flags.take("--format").as_deref() {
            None | Some("markdown") => OutputFormat::Markdown,
            Some("csv") => OutputFormat::Csv,
            Some("json") => OutputFormat::Json,
            Some(other) => {
                return usage_error(format!(
                    "--format expects markdown, csv or json, got `{other}`"
                ))
            }
        };
        Ok(CommonFlags {
            threads: flags.take_usize("--threads")?.unwrap_or(1),
            seed: flags.take_u64("--seed")?.unwrap_or(0),
            sets_per_point: flags.take_usize("--sets-per-point")?,
            format,
            quiet: flags.quiet,
        })
    }

    /// The progress sink: a stderr status line when attached to a terminal,
    /// silent otherwise (so piping JSON to a file stays clean).
    fn progress(&self, label: &str) -> Box<dyn ProgressSink> {
        if self.quiet || !std::io::stderr().is_terminal() {
            Box::new(NullProgress)
        } else {
            Box::new(StderrProgress::new(label))
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    Markdown,
    Csv,
    Json,
}

/// Wraps a serialized `results` payload in the envelope the CI benchmark
/// artifacts expect: which experiment ran and under which reproducibility
/// knobs.
fn json_envelope(experiment: &str, common: &CommonFlags, results_json: &str) -> String {
    format!(
        "{{\"experiment\":\"{experiment}\",\"seed\":{},\"threads\":{},\"results\":{results_json}}}",
        common.seed, common.threads
    )
}

fn take_overhead(flags: &mut Flags, default: OverheadModel) -> CliResult<OverheadModel> {
    match flags.take("--overhead").as_deref() {
        None => Ok(default),
        Some("zero") => Ok(OverheadModel::zero()),
        Some("n4") => Ok(OverheadModel::paper_n4()),
        Some("n64") => Ok(OverheadModel::paper_n64()),
        Some(other) => usage_error(format!("--overhead expects zero, n4 or n64, got `{other}`")),
    }
}

fn render<T: serde::Serialize>(
    experiment: &str,
    common: &CommonFlags,
    results: &T,
    markdown: impl FnOnce() -> String,
    csv: impl FnOnce() -> String,
) -> CliResult<String> {
    Ok(match common.format {
        OutputFormat::Markdown => markdown(),
        OutputFormat::Csv => csv(),
        OutputFormat::Json => {
            let payload = serde_json::to_string(results)
                .map_err(|e| UsageError(format!("serializing results failed: {e}")))?;
            json_envelope(experiment, common, &payload)
        }
    })
}

fn run_acceptance(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = AcceptanceRatioExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_point(sets);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        experiment = experiment.cores(cores);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-set")? {
        experiment = experiment.tasks_per_set(tasks);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::zero())?);
    flags.expect_empty("acceptance")?;
    let results = experiment.run_with_progress(common.progress("acceptance").as_ref());
    render(
        "acceptance",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_sensitivity(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = OverheadSensitivityExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_scale(sets);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-set")? {
        experiment = experiment.tasks_per_set(tasks);
    }
    if let Some(scales) = flags.take_list("--scales")? {
        experiment = experiment.scales(scales);
    }
    if let Some(u) = flags.take_f64("--utilization")? {
        experiment = experiment.normalized_utilization(u);
    }
    flags.expect_empty("sensitivity")?;
    let results = experiment.run_with_progress(common.progress("sensitivity").as_ref());
    render(
        "sensitivity",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

/// Rejects common flags that a subcommand would otherwise silently ignore
/// (e.g. `--seed` on the deterministic `cache` sweep). Must run before
/// [`CommonFlags::take`], which consumes every common flag it knows.
fn reject_inapplicable(flags: &mut Flags, command: &str, keys: &[&str]) -> CliResult<()> {
    for key in keys {
        if flags.take(key).is_some() {
            return usage_error(format!("`spms {command}` does not support {key}"));
        }
    }
    Ok(())
}

fn run_cache(mut flags: Flags) -> CliResult<String> {
    // The cache sweep generates no task sets: no RNG, no replications.
    reject_inapplicable(&mut flags, "cache", &["--seed", "--sets-per-point"])?;
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = CacheCrossoverExperiment::new().threads(common.threads);
    if let Some(sizes) = flags.take_list("--sizes")? {
        experiment = experiment.working_set_sizes(sizes);
    }
    flags.expect_empty("cache")?;
    let results = experiment.run_with_progress(common.progress("cache").as_ref());
    render(
        "cache",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_anatomy(mut flags: Flags) -> CliResult<String> {
    // One deterministic simulation: nothing to seed, replicate or fan out.
    reject_inapplicable(
        &mut flags,
        "anatomy",
        &["--seed", "--sets-per-point", "--threads"],
    )?;
    let common = CommonFlags::take(&mut flags)?;
    flags.expect_empty("anatomy")?;
    let report = PreemptionAnatomy::new().run();
    render(
        "anatomy",
        &common,
        &report,
        || report.render_markdown(),
        || report.render_csv(),
    )
}

fn run_runtime(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = RuntimeCostExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_point(sets);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        experiment = experiment.cores(cores);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-set")? {
        experiment = experiment.tasks_per_set(tasks);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::paper_n4())?);
    flags.expect_empty("runtime")?;
    let results = experiment.run_with_progress(common.progress("runtime").as_ref());
    render(
        "runtime",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_cores(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = CoreCountSweepExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_point(sets);
    }
    if let Some(counts) = flags.take_list("--core-counts")? {
        experiment = experiment.core_counts(counts);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-core")? {
        experiment = experiment.tasks_per_core(tasks);
    }
    if let Some(u) = flags.take_f64("--utilization")? {
        experiment = experiment.normalized_utilization(u);
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::zero())?);
    flags.expect_empty("cores")?;
    let results = experiment.run_with_progress(common.progress("cores").as_ref());
    render(
        "cores",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn run_global(mut flags: Flags) -> CliResult<String> {
    let common = CommonFlags::take(&mut flags)?;
    let mut experiment = GlobalComparisonExperiment::new()
        .seed(common.seed)
        .threads(common.threads);
    if let Some(sets) = common.sets_per_point {
        experiment = experiment.sets_per_point(sets);
    }
    if let Some(cores) = flags.take_usize("--cores")? {
        experiment = experiment.cores(cores);
    }
    if let Some(tasks) = flags.take_usize("--tasks-per-set")? {
        experiment = experiment.tasks_per_set(tasks);
    }
    if let Some(points) = flags.take_list("--points")? {
        experiment = experiment.utilization_points(points);
    }
    experiment = experiment.overhead(take_overhead(&mut flags, OverheadModel::zero())?);
    flags.expect_empty("global")?;
    let results = experiment.run_with_progress(common.progress("global").as_ref());
    render(
        "global",
        &common,
        &results,
        || results.render_markdown(),
        || results.render_csv(),
    )
}

fn dispatch(command: &str, flags: Flags) -> CliResult<String> {
    match command {
        "acceptance" => run_acceptance(flags),
        "sensitivity" => run_sensitivity(flags),
        "cache" => run_cache(flags),
        "anatomy" => run_anatomy(flags),
        "runtime" => run_runtime(flags),
        "cores" => run_cores(flags),
        "global" => run_global(flags),
        other => usage_error(format!("unknown command `{other}`")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.is_empty() {
        // A missing command is an error: keep stdout clean for data so
        // `spms > out.json` pipelines fail without polluting the file.
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let command = args[0].clone();
    let flags = match Flags::parse(&args[1..]) {
        Ok(flags) => flags,
        Err(UsageError(message)) => {
            eprintln!("error: {message}\nrun `spms --help` for usage");
            return ExitCode::from(2);
        }
    };
    match dispatch(&command, flags) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(UsageError(message)) => {
            eprintln!("error: {message}\nrun `spms --help` for usage");
            ExitCode::from(2)
        }
    }
}
